#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <filesystem>
#include <sstream>
#include <string>
#include <vector>

#include "core/system.hpp"
#include "fault_stream.hpp"
#include "harness/experiment.hpp"
#include "metal/compute_command_encoder.hpp"
#include "orchestrator/result_cache.hpp"
#include "power/powermetrics.hpp"
#include "service/frame.hpp"
#include "service/service.hpp"
#include "util/csv_writer.hpp"
#include "util/rng.hpp"

namespace ao {
namespace {

/// Randomized property sweeps: deterministic seeds, so failures reproduce.

// ------------------------------------------------ metal dispatch fuzz ------

TEST(DispatchFuzz, RandomGridsCoverEveryThreadExactlyOnce) {
  core::System system(soc::ChipModel::kM1);
  util::Xoshiro256 rng(2024);

  for (int round = 0; round < 25; ++round) {
    const auto gx = static_cast<std::uint32_t>(1 + rng.next_below(7));
    const auto gy = static_cast<std::uint32_t>(1 + rng.next_below(5));
    const auto gz = static_cast<std::uint32_t>(1 + rng.next_below(3));
    const auto tx = static_cast<std::uint32_t>(1 + rng.next_below(8));
    const auto ty = static_cast<std::uint32_t>(1 + rng.next_below(8));
    const auto tz = static_cast<std::uint32_t>(1 + rng.next_below(4));
    if (tx * ty * tz > 1024) {
      continue;
    }
    const std::uint64_t total =
        static_cast<std::uint64_t>(gx) * gy * gz * tx * ty * tz;

    std::vector<std::atomic<int>> hits(total);
    metal::Kernel k;
    k.name = "coverage_probe";
    k.body = metal::ThreadKernelFn([&hits, gx, tx, gy, ty](
                                       const metal::ArgumentTable&,
                                       const metal::ThreadContext& ctx) {
      const std::uint64_t w = static_cast<std::uint64_t>(gx) * tx;
      const std::uint64_t h = static_cast<std::uint64_t>(gy) * ty;
      const std::uint64_t index =
          ctx.thread_position_in_grid.x +
          w * (ctx.thread_position_in_grid.y +
               h * static_cast<std::uint64_t>(ctx.thread_position_in_grid.z));
      hits[index].fetch_add(1);
    });
    k.estimator = [](const metal::ArgumentTable&, const metal::DispatchShape&) {
      return metal::WorkEstimate::generic(1.0, 1.0);
    };

    auto pipeline = system.device().new_compute_pipeline_state(k);
    auto cmd = system.default_queue()->command_buffer();
    auto enc = cmd->compute_command_encoder();
    enc->set_compute_pipeline_state(pipeline);
    enc->dispatch_threadgroups({gx, gy, gz}, {tx, ty, tz});
    enc->end_encoding();
    cmd->commit();

    for (std::uint64_t i = 0; i < total; ++i) {
      ASSERT_EQ(hits[i].load(), 1)
          << "round " << round << " grid " << gx << "x" << gy << "x" << gz
          << " tg " << tx << "x" << ty << "x" << tz << " thread " << i;
    }
  }
}

// -------------------------------------------------- powermetrics fuzz ------

TEST(PowerMetricsFuzz, RandomSessionsParseBackExactly) {
  util::Xoshiro256 rng(77);
  for (int round = 0; round < 20; ++round) {
    soc::Soc soc(soc::kAllChipModels[rng.next_below(4)]);
    power::PowerMetrics pm(soc, power::SamplerSet{true, true, true});
    pm.start();

    const int samples = 1 + static_cast<int>(rng.next_below(6));
    for (int s = 0; s < samples; ++s) {
      // Random mix of idle and unit activity.
      const int segments = 1 + static_cast<int>(rng.next_below(4));
      for (int seg = 0; seg < segments; ++seg) {
        const double dur = 1e6 + static_cast<double>(rng.next_below(1'000'000'000));
        switch (rng.next_below(4)) {
          case 0:
            soc.idle(dur);
            break;
          case 1:
            soc.execute(soc::ComputeUnit::kGpu, dur, rng.next_double() * 15.0,
                        0.5);
            break;
          case 2:
            soc.execute(soc::ComputeUnit::kAmx, dur, rng.next_double() * 6.0,
                        0.5);
            break;
          default:
            soc.execute(soc::ComputeUnit::kNeuralEngine, dur,
                        rng.next_double() * 4.0, 0.5);
            break;
        }
      }
      pm.siginfo();
    }
    pm.stop();

    const auto parsed = power::parse_powermetrics_output(pm.output_text());
    ASSERT_EQ(parsed.size(), pm.samples().size()) << "round " << round;
    for (std::size_t i = 0; i < parsed.size(); ++i) {
      // Text rounds to whole mW.
      EXPECT_NEAR(parsed[i].cpu_mw, pm.samples()[i].cpu_mw, 0.51);
      EXPECT_NEAR(parsed[i].gpu_mw, pm.samples()[i].gpu_mw, 0.51);
      EXPECT_NEAR(parsed[i].ane_mw, pm.samples()[i].ane_mw, 0.51);
      EXPECT_NEAR(parsed[i].combined_mw, pm.samples()[i].combined_mw, 0.51);
      // Conservation: combined == cpu + gpu + ane in every sample.
      EXPECT_NEAR(pm.samples()[i].combined_mw,
                  pm.samples()[i].cpu_mw + pm.samples()[i].gpu_mw +
                      pm.samples()[i].ane_mw,
                  1e-9);
    }
  }
}

TEST(PowerMetricsFuzz, EnergyNeverNegativeAndAdditive) {
  util::Xoshiro256 rng(88);
  soc::Soc soc(soc::ChipModel::kM4);
  power::PowerModel model(soc);
  std::uint64_t checkpoint = 0;
  double accumulated = 0.0;
  for (int i = 0; i < 50; ++i) {
    const double dur = 1e6 + static_cast<double>(rng.next_below(100'000'000));
    soc.execute(soc::ComputeUnit::kGpu, dur, rng.next_double() * 20.0, 1.0);
    const std::uint64_t now = soc.clock().now();
    const double segment = model.energy_joules(checkpoint, now);
    EXPECT_GE(segment, 0.0);
    accumulated += segment;
    checkpoint = now;
  }
  // Sum of disjoint windows equals the full-window integral.
  EXPECT_NEAR(accumulated, model.energy_joules(0, soc.clock().now()),
              accumulated * 1e-9);
}

// --------------------------------------------------------- csv fuzz --------

TEST(CsvFuzz, RandomContentRoundTrips) {
  util::Xoshiro256 rng(99);
  const std::string alphabet =
      "abcXYZ019 ,\"\n\r;|\t-_=()";
  for (int round = 0; round < 40; ++round) {
    const std::size_t cols = 1 + rng.next_below(6);
    const std::size_t rows = rng.next_below(8);
    std::vector<std::string> header;
    for (std::size_t c = 0; c < cols; ++c) {
      header.push_back("col" + std::to_string(c));
    }
    util::CsvWriter csv(header);
    std::vector<std::vector<std::string>> expected;
    for (std::size_t r = 0; r < rows; ++r) {
      std::vector<std::string> row;
      for (std::size_t c = 0; c < cols; ++c) {
        std::string field;
        const std::size_t len = rng.next_below(12);
        for (std::size_t i = 0; i < len; ++i) {
          field += alphabet[rng.next_below(alphabet.size())];
        }
        row.push_back(field);
      }
      expected.push_back(row);
      csv.add_row(row);
    }
    const auto parsed = util::parse_csv(csv.to_string());
    ASSERT_EQ(parsed.size(), rows + 1) << "round " << round;
    for (std::size_t r = 0; r < rows; ++r) {
      EXPECT_EQ(parsed[r + 1], expected[r]) << "round " << round;
    }
  }
}

// -------------------------------------------------- simulated time fuzz ----

TEST(TimelineFuzz, ClockMonotoneUnderRandomWorkloads) {
  util::Xoshiro256 rng(111);
  core::System system(soc::ChipModel::kM2);
  soc::PerfModel perf(system.soc());
  std::uint64_t last = 0;
  for (int i = 0; i < 200; ++i) {
    const auto impl = soc::kAllGemmImpls[rng.next_below(6)];
    const std::size_t n = 32u << rng.next_below(6);
    system.soc().execute(
        soc::ComputeUnit::kGpu, perf.gemm_time_ns(impl, n),
        perf.gemm_power_watts(impl, n), perf.gemm_utilization(impl, n));
    ASSERT_GT(system.soc().clock().now(), last);
    last = system.soc().clock().now();
  }
  // Activity log is time-ordered and gap-free under back-to-back execution.
  const auto& records = system.soc().activity().records();
  for (std::size_t i = 1; i < records.size(); ++i) {
    ASSERT_EQ(records[i].start_ns, records[i - 1].end_ns);
  }
}

// ------------------------------------------------------ wire frame fuzz ----

/// The stable reader errors — a mutated frame must land on one of these,
/// never on a crash, a hang, or a silently wrong frame.
bool structured_frame_error(const std::string& error) {
  return error == "closed" || error == "bad-frame-header" ||
         error == "frame-oversized" || error == "frame-truncated" ||
         error == "frame-digest-mismatch";
}

TEST(FrameFuzz, MutatedFramesFailStructurallyNeverCrash) {
  util::Xoshiro256 rng(31337);
  const char* types[] = {"records", "store", "spans", "shard-error"};
  for (int round = 0; round < 400; ++round) {
    std::string payload;
    const std::size_t size = rng.next_below(512);
    for (std::size_t i = 0; i < size; ++i) {
      payload.push_back(static_cast<char>(rng.next_below(256)));
    }
    const std::string encoded =
        service::encode_frame({types[rng.next_below(4)], payload});

    // Half the rounds cut the stream, half flip a byte; bias a third of the
    // positions into the header line so magic, type, length and digest
    // tokens all get mutated, not just the (much longer) payload.
    const std::size_t header_len = encoded.find('\n') + 1;
    const std::size_t at = rng.next_below(3) == 0
                               ? rng.next_below(header_len)
                               : rng.next_below(encoded.size());
    const auto fault =
        rng.next_below(2) == 0 ? test::Fault::kTruncate : test::Fault::kCorrupt;
    test::FaultStream in(encoded, fault, at);
    std::string error;
    const auto frame = service::read_frame(in, &error);
    ASSERT_FALSE(frame.has_value())
        << "round " << round << " fault at " << at << " parsed a frame";
    EXPECT_TRUE(structured_frame_error(error))
        << "round " << round << " fault at " << at << ": " << error;
  }
}

/// Entry lines as the workers batch them: a small result store serialized
/// the same way a shard's records hit the wire.
std::vector<std::string> fuzz_entry_lines() {
  orchestrator::ResultCache source;
  for (std::size_t i = 0; i < 6; ++i) {
    orchestrator::CacheKey key;
    key.kind = orchestrator::JobKind::kGemmMeasure;
    key.chip = soc::kAllChipModels[i % 4];
    key.impl = soc::GemmImpl::kGpuMps;
    key.n = 64 + i;
    key.options_fingerprint = 5;
    harness::GemmMeasurement m;
    m.n = key.n;
    m.chip = key.chip;
    m.impl = key.impl;
    m.best_gflops = 100.5 + static_cast<double>(i);
    m.time_ns.add(1.25e6 + static_cast<double>(i));
    source.insert(key, m);
  }
  std::vector<std::string> lines;
  std::istringstream store(source.serialize_store());
  std::string line;
  std::getline(store, line);  // drop the version header
  while (std::getline(store, line)) {
    lines.push_back(line);
  }
  return lines;
}

TEST(FrameFuzz, MidBatchCorruptionRejectsTheWholeFrameNoPartialDelivery) {
  // A batched `records` frame is all-or-nothing: corruption anywhere in the
  // coalesced payload must fail the frame digest — the daemon never splits
  // a half-good batch into lines, so no partial merge can happen.
  const std::vector<std::string> lines = fuzz_entry_lines();
  std::string payload;
  for (const auto& line : lines) {
    if (!payload.empty()) {
      payload += '\n';
    }
    payload += line;
  }
  const std::string encoded = service::encode_frame({"records", payload});
  const std::size_t header_len = encoded.find('\n') + 1;

  util::Xoshiro256 rng(4242);
  for (int round = 0; round < 100; ++round) {
    const std::size_t at = header_len + rng.next_below(payload.size());
    const bool truncate = rng.next_below(2) == 0;
    test::FaultStream in(encoded, truncate ? test::Fault::kTruncate
                                           : test::Fault::kCorrupt, at);
    std::string error;
    ASSERT_FALSE(service::read_frame(in, &error).has_value()) << "round "
                                                              << round;
    EXPECT_EQ(error, truncate ? "frame-truncated" : "frame-digest-mismatch")
        << "round " << round << " at " << at;
  }

  // The unmutated frame still round-trips to the exact lines.
  std::istringstream clean(encoded);
  std::string error;
  const auto frame = service::read_frame(clean, &error);
  ASSERT_TRUE(frame.has_value()) << error;
  std::vector<std::string> split;
  std::istringstream entries(frame->payload);
  std::string line;
  while (std::getline(entries, line)) {
    split.push_back(line);
  }
  EXPECT_EQ(split, lines);
}

TEST(StoreMergeFuzz, CorruptedBuffersMergeOnlyIntactEntries) {
  // The merge path behind the `store` frame: random byte mutations may cost
  // entries (skipped and counted), but whatever merges must be bit-identical
  // to the source — a corrupted line can never smuggle in a wrong record.
  orchestrator::ResultCache source;
  for (std::size_t i = 0; i < 6; ++i) {
    orchestrator::CacheKey key;
    key.kind = orchestrator::JobKind::kGemmMeasure;
    key.chip = soc::ChipModel::kM2;
    key.impl = soc::GemmImpl::kCpuOmp;
    key.n = 96 + i;
    key.options_fingerprint = 9;
    harness::GemmMeasurement m;
    m.n = key.n;
    m.best_gflops = 250.25 + static_cast<double>(i);
    m.time_ns.add(3.5e6);
    source.insert(key, m);
  }
  const std::string buffer = source.serialize_store();

  util::Xoshiro256 rng(1991);
  for (int round = 0; round < 200; ++round) {
    std::string mutated = buffer;
    const std::size_t flips = 1 + rng.next_below(3);
    for (std::size_t f = 0; f < flips; ++f) {
      const std::size_t at = rng.next_below(mutated.size());
      mutated[at] = static_cast<char>(
          static_cast<unsigned char>(mutated[at]) ^
          static_cast<unsigned char>(1 + rng.next_below(255)));
    }
    orchestrator::ResultCache merged;
    const std::size_t count = merged.merge_buffer(mutated);  // must not throw
    EXPECT_LE(count, 6u) << "round " << round;
    EXPECT_EQ(merged.size(), count) << "round " << round;
    for (const auto& [key, record] : merged.entries()) {
      const auto original = source.lookup(key);
      ASSERT_TRUE(original.has_value()) << "round " << round;
      EXPECT_TRUE(*original == record) << "round " << round;
    }
  }
}

// ----------------------------------------------------- query/follow fuzz ---

/// One protocol session against the service; replies split into lines.
std::vector<std::string> fuzz_serve(service::CampaignService& service,
                                    const std::string& input) {
  std::istringstream in(input);
  std::ostringstream out;
  service.serve(in, out);
  std::vector<std::string> lines;
  std::istringstream reader(out.str());
  std::string line;
  while (std::getline(reader, line)) {
    lines.push_back(line);
  }
  return lines;
}

/// The stable replies a mutated read-path line may earn. Anything else —
/// and any crash — fails the sweep.
bool structured_read_reply(const std::string& line) {
  static const char* kPrefixes[] = {
      "query-record ", "query-page ",  "follow-record ", "follow ",
      "error bad-query ", "error bad-cursor ", "error stale-cursor ",
      "error unknown-campaign ", "error bad-name ", "error bad-request ",
      "error unknown-command ", "error no-store ", "error bad-state ",
      "error bad-directive ", "pong", "ok compact",
  };
  for (const char* prefix : kPrefixes) {
    if (line.rfind(prefix, 0) == 0) {
      return true;
    }
  }
  return false;
}

/// A service with a populated store and one retained campaign journal —
/// the substrate every read-path fuzz round mutates requests against.
std::string fuzz_store_path() {
  const auto path =
      std::filesystem::temp_directory_path() / "ao_queryfuzz.store";
  std::filesystem::remove(path);
  return path.string();
}

void populate_campaign(service::CampaignService& service) {
  const auto lines = fuzz_serve(service,
                                "begin fuzzq\n"
                                "chips m1,m2\n"
                                "impls cpu-single\n"
                                "sizes 32,48\n"
                                "repetitions 1\n"
                                "run\n");
  ASSERT_FALSE(lines.empty());
  ASSERT_EQ(lines.back().rfind("done campaign ", 0), 0u) << lines.back();
}

/// The cursor of the first `query-page` reply, "" when the page exhausted.
std::string first_query_cursor(service::CampaignService& service,
                               std::size_t limit) {
  const auto lines = fuzz_serve(
      service, "query limit " + std::to_string(limit) + "\n");
  for (const auto& line : lines) {
    const std::size_t at = line.rfind(" cursor ");
    if (line.rfind("query-page ", 0) == 0 && at != std::string::npos) {
      const std::string token = line.substr(at + 8);
      return token == "end" ? std::string() : token;
    }
  }
  return {};
}

TEST(QueryFuzz, MutatedRequestLinesFailStructurallyNeverCrash) {
  const std::string store = fuzz_store_path();
  service::CampaignService::Config config;
  config.store_path = store;
  service::CampaignService service(config);
  populate_campaign(service);

  const std::string query_cursor = first_query_cursor(service, 1);
  ASSERT_FALSE(query_cursor.empty());
  // A follow cursor, clipped off the terminal follow reply.
  std::string follow_cursor;
  for (const auto& line : fuzz_serve(service, "follow fuzzq\n")) {
    const std::size_t at = line.rfind(" cursor ");
    if (line.rfind("follow ", 0) == 0 && at != std::string::npos) {
      std::istringstream rest(line.substr(at + 8));
      rest >> follow_cursor;
    }
  }
  ASSERT_FALSE(follow_cursor.empty());

  const std::vector<std::string> corpus = {
      "query",
      "query limit 2",
      "query kind gemm-measure chip m1 impl cpu-single",
      "query size-min 16 size-max 64 limit 3",
      "query cursor " + query_cursor,
      "follow fuzzq",
      "follow fuzzq from " + follow_cursor,
  };
  const std::string splice_tokens[] = {
      "kind",   "chip",  "impl",       "size",  "limit",  "cursor",
      "from",   "m9",    "sme-gemm",   "0",     "999999", "aoq1",
      "aof1.0", "-1",    "0x10",       "fuzzq", "query",  "follow",
  };

  util::Xoshiro256 rng(90210);
  for (int round = 0; round < 400; ++round) {
    std::string line = corpus[rng.next_below(corpus.size())];
    switch (rng.next_below(3)) {
      case 0:  // truncate
        line = line.substr(0, rng.next_below(line.size() + 1));
        break;
      case 1: {  // flip one byte into another printable
        const std::size_t at = rng.next_below(line.size());
        line[at] = static_cast<char>('!' + rng.next_below(94));
        break;
      }
      default: {  // splice a token somewhere
        const std::string& token =
            splice_tokens[rng.next_below(std::size(splice_tokens))];
        const std::size_t at = rng.next_below(line.size() + 1);
        line = line.substr(0, at) + " " + token + " " + line.substr(at);
        break;
      }
    }
    const auto replies = fuzz_serve(service, line + "\nping\n");
    ASSERT_FALSE(replies.empty()) << "round " << round << ": " << line;
    // The session survived to the pong, and every reply is structured.
    EXPECT_EQ(replies.back(), "pong") << "round " << round << ": " << line;
    for (const auto& reply : replies) {
      EXPECT_TRUE(structured_read_reply(reply))
          << "round " << round << " line '" << line << "' -> " << reply;
    }
  }
  std::filesystem::remove(store);
}

TEST(QueryFuzz, MutatedCursorsAreRejectedReplaysAreIdentical) {
  const std::string store = fuzz_store_path();
  service::CampaignService::Config config;
  config.store_path = store;
  service::CampaignService service(config);
  populate_campaign(service);

  const std::string cursor = first_query_cursor(service, 1);
  ASSERT_FALSE(cursor.empty());

  // Replay: the identical cursor twice serves the identical page — a resume
  // after a dropped connection never skips or duplicates.
  const std::string resume = "query limit 1 cursor " + cursor + "\n";
  EXPECT_EQ(fuzz_serve(service, resume), fuzz_serve(service, resume));

  // Every truncation and every byte flip of the token is rejected with a
  // structured cursor error — never a wrong-but-plausible page.
  for (std::size_t len = 0; len < cursor.size(); ++len) {
    const auto replies = fuzz_serve(
        service, "query cursor " + cursor.substr(0, len) + "\n");
    ASSERT_EQ(replies.size(), 1u) << "prefix " << len;
    // Length 0 leaves `cursor` valueless — a filter error, not a cursor one.
    EXPECT_TRUE(replies[0].rfind("error bad-cursor ", 0) == 0 ||
                replies[0].rfind("error bad-query ", 0) == 0)
        << "prefix " << len << " -> " << replies[0];
  }
  util::Xoshiro256 rng(777);
  for (std::size_t at = 0; at < cursor.size(); ++at) {
    std::string mutated = cursor;
    do {
      mutated[at] = static_cast<char>('!' + rng.next_below(94));
    } while (mutated[at] == cursor[at]);
    const auto replies =
        fuzz_serve(service, "query cursor " + mutated + "\n");
    ASSERT_EQ(replies.size(), 1u) << "flip at " << at;
    EXPECT_EQ(replies[0].rfind("error bad-cursor ", 0), 0u)
        << "flip at " << at << " -> " << replies[0];
  }

  // A cursor that outlives a compaction fails structurally as stale — the
  // offsets it rode on were reclaimed by the rewrite.
  const auto compacted = fuzz_serve(service, "compact\n");
  ASSERT_FALSE(compacted.empty());
  EXPECT_EQ(compacted[0].rfind("ok compact", 0), 0u) << compacted[0];
  const auto stale = fuzz_serve(service, resume);
  ASSERT_EQ(stale.size(), 1u);
  EXPECT_EQ(stale[0].rfind("error stale-cursor ", 0), 0u) << stale[0];

  // Follow cursors: mutations of a real token are rejected the same way.
  std::string follow_cursor;
  for (const auto& line : fuzz_serve(service, "follow fuzzq\n")) {
    const std::size_t at = line.rfind(" cursor ");
    if (line.rfind("follow ", 0) == 0 && at != std::string::npos) {
      std::istringstream rest(line.substr(at + 8));
      rest >> follow_cursor;
    }
  }
  ASSERT_FALSE(follow_cursor.empty());
  for (std::size_t len = 0; len < follow_cursor.size(); ++len) {
    const auto replies = fuzz_serve(
        service,
        "follow fuzzq from " + follow_cursor.substr(0, len) + "\n");
    ASSERT_EQ(replies.size(), 1u) << "prefix " << len;
    // Length 0 leaves a three-word line — a usage error, not a cursor one.
    EXPECT_TRUE(replies[0].rfind("error bad-cursor ", 0) == 0 ||
                replies[0].rfind("error bad-request ", 0) == 0)
        << "prefix " << len << " -> " << replies[0];
  }
  std::filesystem::remove(store);
}

}  // namespace
}  // namespace ao
