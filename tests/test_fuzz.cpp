#include <gtest/gtest.h>

#include <atomic>
#include <string>
#include <vector>

#include "core/system.hpp"
#include "metal/compute_command_encoder.hpp"
#include "power/powermetrics.hpp"
#include "util/csv_writer.hpp"
#include "util/rng.hpp"

namespace ao {
namespace {

/// Randomized property sweeps: deterministic seeds, so failures reproduce.

// ------------------------------------------------ metal dispatch fuzz ------

TEST(DispatchFuzz, RandomGridsCoverEveryThreadExactlyOnce) {
  core::System system(soc::ChipModel::kM1);
  util::Xoshiro256 rng(2024);

  for (int round = 0; round < 25; ++round) {
    const auto gx = static_cast<std::uint32_t>(1 + rng.next_below(7));
    const auto gy = static_cast<std::uint32_t>(1 + rng.next_below(5));
    const auto gz = static_cast<std::uint32_t>(1 + rng.next_below(3));
    const auto tx = static_cast<std::uint32_t>(1 + rng.next_below(8));
    const auto ty = static_cast<std::uint32_t>(1 + rng.next_below(8));
    const auto tz = static_cast<std::uint32_t>(1 + rng.next_below(4));
    if (tx * ty * tz > 1024) {
      continue;
    }
    const std::uint64_t total =
        static_cast<std::uint64_t>(gx) * gy * gz * tx * ty * tz;

    std::vector<std::atomic<int>> hits(total);
    metal::Kernel k;
    k.name = "coverage_probe";
    k.body = metal::ThreadKernelFn([&hits, gx, tx, gy, ty](
                                       const metal::ArgumentTable&,
                                       const metal::ThreadContext& ctx) {
      const std::uint64_t w = static_cast<std::uint64_t>(gx) * tx;
      const std::uint64_t h = static_cast<std::uint64_t>(gy) * ty;
      const std::uint64_t index =
          ctx.thread_position_in_grid.x +
          w * (ctx.thread_position_in_grid.y +
               h * static_cast<std::uint64_t>(ctx.thread_position_in_grid.z));
      hits[index].fetch_add(1);
    });
    k.estimator = [](const metal::ArgumentTable&, const metal::DispatchShape&) {
      return metal::WorkEstimate::generic(1.0, 1.0);
    };

    auto pipeline = system.device().new_compute_pipeline_state(k);
    auto cmd = system.default_queue()->command_buffer();
    auto enc = cmd->compute_command_encoder();
    enc->set_compute_pipeline_state(pipeline);
    enc->dispatch_threadgroups({gx, gy, gz}, {tx, ty, tz});
    enc->end_encoding();
    cmd->commit();

    for (std::uint64_t i = 0; i < total; ++i) {
      ASSERT_EQ(hits[i].load(), 1)
          << "round " << round << " grid " << gx << "x" << gy << "x" << gz
          << " tg " << tx << "x" << ty << "x" << tz << " thread " << i;
    }
  }
}

// -------------------------------------------------- powermetrics fuzz ------

TEST(PowerMetricsFuzz, RandomSessionsParseBackExactly) {
  util::Xoshiro256 rng(77);
  for (int round = 0; round < 20; ++round) {
    soc::Soc soc(soc::kAllChipModels[rng.next_below(4)]);
    power::PowerMetrics pm(soc, power::SamplerSet{true, true, true});
    pm.start();

    const int samples = 1 + static_cast<int>(rng.next_below(6));
    for (int s = 0; s < samples; ++s) {
      // Random mix of idle and unit activity.
      const int segments = 1 + static_cast<int>(rng.next_below(4));
      for (int seg = 0; seg < segments; ++seg) {
        const double dur = 1e6 + static_cast<double>(rng.next_below(1'000'000'000));
        switch (rng.next_below(4)) {
          case 0:
            soc.idle(dur);
            break;
          case 1:
            soc.execute(soc::ComputeUnit::kGpu, dur, rng.next_double() * 15.0,
                        0.5);
            break;
          case 2:
            soc.execute(soc::ComputeUnit::kAmx, dur, rng.next_double() * 6.0,
                        0.5);
            break;
          default:
            soc.execute(soc::ComputeUnit::kNeuralEngine, dur,
                        rng.next_double() * 4.0, 0.5);
            break;
        }
      }
      pm.siginfo();
    }
    pm.stop();

    const auto parsed = power::parse_powermetrics_output(pm.output_text());
    ASSERT_EQ(parsed.size(), pm.samples().size()) << "round " << round;
    for (std::size_t i = 0; i < parsed.size(); ++i) {
      // Text rounds to whole mW.
      EXPECT_NEAR(parsed[i].cpu_mw, pm.samples()[i].cpu_mw, 0.51);
      EXPECT_NEAR(parsed[i].gpu_mw, pm.samples()[i].gpu_mw, 0.51);
      EXPECT_NEAR(parsed[i].ane_mw, pm.samples()[i].ane_mw, 0.51);
      EXPECT_NEAR(parsed[i].combined_mw, pm.samples()[i].combined_mw, 0.51);
      // Conservation: combined == cpu + gpu + ane in every sample.
      EXPECT_NEAR(pm.samples()[i].combined_mw,
                  pm.samples()[i].cpu_mw + pm.samples()[i].gpu_mw +
                      pm.samples()[i].ane_mw,
                  1e-9);
    }
  }
}

TEST(PowerMetricsFuzz, EnergyNeverNegativeAndAdditive) {
  util::Xoshiro256 rng(88);
  soc::Soc soc(soc::ChipModel::kM4);
  power::PowerModel model(soc);
  std::uint64_t checkpoint = 0;
  double accumulated = 0.0;
  for (int i = 0; i < 50; ++i) {
    const double dur = 1e6 + static_cast<double>(rng.next_below(100'000'000));
    soc.execute(soc::ComputeUnit::kGpu, dur, rng.next_double() * 20.0, 1.0);
    const std::uint64_t now = soc.clock().now();
    const double segment = model.energy_joules(checkpoint, now);
    EXPECT_GE(segment, 0.0);
    accumulated += segment;
    checkpoint = now;
  }
  // Sum of disjoint windows equals the full-window integral.
  EXPECT_NEAR(accumulated, model.energy_joules(0, soc.clock().now()),
              accumulated * 1e-9);
}

// --------------------------------------------------------- csv fuzz --------

TEST(CsvFuzz, RandomContentRoundTrips) {
  util::Xoshiro256 rng(99);
  const std::string alphabet =
      "abcXYZ019 ,\"\n\r;|\t-_=()";
  for (int round = 0; round < 40; ++round) {
    const std::size_t cols = 1 + rng.next_below(6);
    const std::size_t rows = rng.next_below(8);
    std::vector<std::string> header;
    for (std::size_t c = 0; c < cols; ++c) {
      header.push_back("col" + std::to_string(c));
    }
    util::CsvWriter csv(header);
    std::vector<std::vector<std::string>> expected;
    for (std::size_t r = 0; r < rows; ++r) {
      std::vector<std::string> row;
      for (std::size_t c = 0; c < cols; ++c) {
        std::string field;
        const std::size_t len = rng.next_below(12);
        for (std::size_t i = 0; i < len; ++i) {
          field += alphabet[rng.next_below(alphabet.size())];
        }
        row.push_back(field);
      }
      expected.push_back(row);
      csv.add_row(row);
    }
    const auto parsed = util::parse_csv(csv.to_string());
    ASSERT_EQ(parsed.size(), rows + 1) << "round " << round;
    for (std::size_t r = 0; r < rows; ++r) {
      EXPECT_EQ(parsed[r + 1], expected[r]) << "round " << round;
    }
  }
}

// -------------------------------------------------- simulated time fuzz ----

TEST(TimelineFuzz, ClockMonotoneUnderRandomWorkloads) {
  util::Xoshiro256 rng(111);
  core::System system(soc::ChipModel::kM2);
  soc::PerfModel perf(system.soc());
  std::uint64_t last = 0;
  for (int i = 0; i < 200; ++i) {
    const auto impl = soc::kAllGemmImpls[rng.next_below(6)];
    const std::size_t n = 32u << rng.next_below(6);
    system.soc().execute(
        soc::ComputeUnit::kGpu, perf.gemm_time_ns(impl, n),
        perf.gemm_power_watts(impl, n), perf.gemm_utilization(impl, n));
    ASSERT_GT(system.soc().clock().now(), last);
    last = system.soc().clock().now();
  }
  // Activity log is time-ordered and gap-free under back-to-back execution.
  const auto& records = system.soc().activity().records();
  for (std::size_t i = 1; i < records.size(); ++i) {
    ASSERT_EQ(records[i].start_ns, records[i - 1].end_ns);
  }
}

}  // namespace
}  // namespace ao
