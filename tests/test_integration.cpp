#include <gtest/gtest.h>

#include <map>

#include "core/system.hpp"
#include "harness/experiment.hpp"
#include "harness/matrix_workload.hpp"
#include "harness/reporting.hpp"
#include "stream/cpu_stream.hpp"
#include "stream/gpu_stream.hpp"

namespace ao {
namespace {

/// Runs the full Figure-2/3/4 pipeline at model-only fidelity over the whole
/// paper size range for every chip. This is the integration spine: if any
/// wiring between harness, gemm, metal, mps, power and soc breaks, this
/// fails.
std::vector<harness::GemmMeasurement> full_model_sweep() {
  std::vector<harness::GemmMeasurement> all;
  for (const auto chip : soc::kAllChipModels) {
    core::System system(chip);
    harness::GemmExperiment::Options opts;
    opts.repetitions = 5;
    for (auto& [impl, ceiling] : opts.functional_n_max) {
      ceiling = 0;  // model-only: the sweep covers n up to 16384
    }
    harness::GemmExperiment experiment(system.gemm_context(), opts);
    auto results = experiment.run_suite(
        {soc::kAllGemmImpls.begin(), soc::kAllGemmImpls.end()},
        harness::paper_sizes());
    all.insert(all.end(), results.begin(), results.end());
  }
  return all;
}

const std::vector<harness::GemmMeasurement>& sweep() {
  static const auto results = full_model_sweep();
  return results;
}

double peak_gflops(soc::ChipModel chip, soc::GemmImpl impl) {
  double best = 0.0;
  for (const auto& r : sweep()) {
    if (r.chip == chip && r.impl == impl) {
      best = std::max(best, r.best_gflops);
    }
  }
  return best;
}

double peak_efficiency(soc::ChipModel chip, soc::GemmImpl impl) {
  double best = 0.0;
  for (const auto& r : sweep()) {
    if (r.chip == chip && r.impl == impl) {
      best = std::max(best, r.gflops_per_watt);
    }
  }
  return best;
}

TEST(Integration, SweepHasExpectedRowCount) {
  // 10 sizes x 6 impls, minus the 2x2 skipped slow-CPU rows, per chip.
  const std::size_t per_chip = 10 * 6 - 4;
  EXPECT_EQ(sweep().size(), per_chip * 4);
}

TEST(Integration, PaperPeakGflopsReproduced) {
  // Section 5.2's headline numbers, within 5%.
  const std::map<std::pair<soc::ChipModel, soc::GemmImpl>, double> expected = {
      {{soc::ChipModel::kM1, soc::GemmImpl::kCpuAccelerate}, 900},
      {{soc::ChipModel::kM2, soc::GemmImpl::kCpuAccelerate}, 1090},
      {{soc::ChipModel::kM3, soc::GemmImpl::kCpuAccelerate}, 1380},
      {{soc::ChipModel::kM4, soc::GemmImpl::kCpuAccelerate}, 1490},
      {{soc::ChipModel::kM1, soc::GemmImpl::kGpuMps}, 1360},
      {{soc::ChipModel::kM2, soc::GemmImpl::kGpuMps}, 2240},
      {{soc::ChipModel::kM3, soc::GemmImpl::kGpuMps}, 2470},
      {{soc::ChipModel::kM4, soc::GemmImpl::kGpuMps}, 2900},
      {{soc::ChipModel::kM1, soc::GemmImpl::kGpuNaive}, 200},
      {{soc::ChipModel::kM4, soc::GemmImpl::kGpuNaive}, 540},
      {{soc::ChipModel::kM1, soc::GemmImpl::kGpuCutlass}, 150},
      {{soc::ChipModel::kM4, soc::GemmImpl::kGpuCutlass}, 340},
  };
  for (const auto& [key, gflops] : expected) {
    EXPECT_NEAR(peak_gflops(key.first, key.second), gflops, gflops * 0.05)
        << soc::to_string(key.first) << "/" << soc::to_string(key.second);
  }
}

TEST(Integration, M1CpuAndGpuComparableThenGpuPullsAhead) {
  // "the M1 CPU and GPU have similar performance ... while starting from
  // the M2, the GPU significantly outperforms the CPU."
  const double m1_ratio = peak_gflops(soc::ChipModel::kM1, soc::GemmImpl::kGpuMps) /
                          peak_gflops(soc::ChipModel::kM1, soc::GemmImpl::kCpuAccelerate);
  EXPECT_LT(m1_ratio, 1.6);
  for (const auto chip :
       {soc::ChipModel::kM2, soc::ChipModel::kM3, soc::ChipModel::kM4}) {
    const double ratio = peak_gflops(chip, soc::GemmImpl::kGpuMps) /
                         peak_gflops(chip, soc::GemmImpl::kCpuAccelerate);
    EXPECT_GT(ratio, 1.75) << soc::to_string(chip);
  }
}

TEST(Integration, GpuLosesAtSmallSizes) {
  // Figure 2's crossover: at n = 32 every GPU path is slower than the CPU
  // baseline on every chip.
  for (const auto& r : sweep()) {
    if (r.n != 32 || !soc::is_gpu_impl(r.impl)) {
      continue;
    }
    double cpu_single = 0.0;
    for (const auto& s : sweep()) {
      if (s.chip == r.chip && s.n == 32 && s.impl == soc::GemmImpl::kCpuSingle) {
        cpu_single = s.best_gflops;
      }
    }
    EXPECT_LT(r.best_gflops, cpu_single)
        << soc::to_string(r.chip) << "/" << soc::to_string(r.impl);
  }
}

TEST(Integration, MpsEfficiencyReaches200GflopsPerWatt) {
  // "All four chips reached the efficiency of 200 GFLOPS per Watt with
  // GPU-MPS"; per-chip peaks 210/400/460/330.
  const std::array<double, 4> expected = {210, 400, 460, 330};
  for (std::size_t i = 0; i < soc::kAllChipModels.size(); ++i) {
    const double eff =
        peak_efficiency(soc::kAllChipModels[i], soc::GemmImpl::kGpuMps);
    EXPECT_GE(eff, 200.0) << soc::to_string(soc::kAllChipModels[i]);
    EXPECT_NEAR(eff, expected[i], expected[i] * 0.10);
  }
}

TEST(Integration, AccelerateEfficiencyMatchesPaper) {
  // CPU-Accelerate: 0.25 / 0.20 / 0.27 / 0.23 TFLOPS/W.
  const std::array<double, 4> expected = {250, 200, 270, 230};
  for (std::size_t i = 0; i < soc::kAllChipModels.size(); ++i) {
    EXPECT_NEAR(peak_efficiency(soc::kAllChipModels[i],
                                soc::GemmImpl::kCpuAccelerate),
                expected[i], expected[i] * 0.10);
  }
}

TEST(Integration, CpuLoopsStayUnderOneGflopPerWatt) {
  for (const auto& r : sweep()) {
    if ((r.impl == soc::GemmImpl::kCpuSingle ||
         r.impl == soc::GemmImpl::kCpuOmp) &&
        r.n >= 2048) {
      EXPECT_LT(r.gflops_per_watt, 1.0)
          << soc::to_string(r.chip) << "/" << soc::to_string(r.impl)
          << " n=" << r.n;
    }
  }
}

TEST(Integration, PowerStaysInPaperEnvelope) {
  // "our measurements range from a few to 20 Watts" (Figure 3: <= ~20000 mW).
  for (const auto& r : sweep()) {
    if (r.n >= 2048) {
      EXPECT_GT(r.power_mw, 500.0) << soc::to_string(r.impl);
      EXPECT_LE(r.power_mw, 21000.0)
          << soc::to_string(r.chip) << "/" << soc::to_string(r.impl);
    }
  }
}

TEST(Integration, M4CutlassIsThePowerCeiling) {
  double cutlass_m4 = 0.0;
  double overall_max = 0.0;
  for (const auto& r : sweep()) {
    if (r.n < 2048) {
      continue;  // Figure 3's size range
    }
    overall_max = std::max(overall_max, r.power_mw);
    if (r.chip == soc::ChipModel::kM4 && r.impl == soc::GemmImpl::kGpuCutlass) {
      cutlass_m4 = std::max(cutlass_m4, r.power_mw);
    }
  }
  EXPECT_NEAR(cutlass_m4, overall_max, 1.0);
}

TEST(Integration, LaptopsDissipateLessThanDesktops) {
  // Section 7: M1/M3 (MacBook Air) sit below M2/M4 (Mac mini) in sustained
  // draw for the same implementation class.
  auto max_power = [&](soc::ChipModel chip) {
    double best = 0.0;
    for (const auto& r : sweep()) {
      if (r.chip == chip && r.impl == soc::GemmImpl::kCpuOmp && r.n >= 2048) {
        best = std::max(best, r.power_mw);
      }
    }
    return best;
  };
  EXPECT_LT(max_power(soc::ChipModel::kM1), max_power(soc::ChipModel::kM2));
  EXPECT_LT(max_power(soc::ChipModel::kM3), max_power(soc::ChipModel::kM4));
}

TEST(Integration, ReportsRenderForFullSweep) {
  for (const auto chip : soc::kAllChipModels) {
    EXPECT_GT(harness::figure2_table(chip, sweep()).row_count(), 0u);
    EXPECT_GT(harness::figure3_table(chip, sweep()).row_count(), 0u);
    EXPECT_GT(harness::figure4_table(chip, sweep()).row_count(), 0u);
    EXPECT_FALSE(harness::figure2_plot(chip, sweep()).empty());
  }
  EXPECT_EQ(harness::figure2_csv(sweep()).row_count(), sweep().size());
}

TEST(Integration, StreamAndGemmShareOneTimeline) {
  // Running STREAM then GEMM on one system keeps a single consistent
  // simulated timeline and activity log.
  core::System system(soc::ChipModel::kM1);
  stream::CpuStream cpu_stream(system.soc(), 1u << 16);
  cpu_stream.run(4, 2);
  const auto after_stream = system.soc().clock().now();
  EXPECT_GT(after_stream, 0u);

  harness::GemmExperiment experiment(system.gemm_context());
  auto impl = gemm::create_gemm(soc::GemmImpl::kGpuMps, system.gemm_context());
  harness::MatrixSet matrices(128, true);
  experiment.measure(*impl, matrices);
  EXPECT_GT(system.soc().clock().now(), after_stream);

  bool has_cpu = false;
  bool has_gpu = false;
  for (const auto& rec : system.soc().activity().records()) {
    has_cpu |= rec.unit == soc::ComputeUnit::kCpuPCluster;
    has_gpu |= rec.unit == soc::ComputeUnit::kGpu;
  }
  EXPECT_TRUE(has_cpu);
  EXPECT_TRUE(has_gpu);
}

}  // namespace
}  // namespace ao
