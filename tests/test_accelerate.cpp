#include <gtest/gtest.h>

#include <vector>

#include "accelerate/cblas.hpp"
#include "accelerate/reference_blas.hpp"
#include "accelerate/vdsp.hpp"
#include "util/error.hpp"
#include "util/rng.hpp"

namespace ao::accelerate {
namespace {

std::vector<float> random_matrix(std::size_t elements, std::uint64_t seed) {
  std::vector<float> m(elements);
  util::fill_uniform(std::span<float>(m), seed);
  return m;
}

// --------------------------------------------------------- cblas_sgemm -----

TEST(CblasSgemm, Listing1Configuration) {
  // The paper's exact call: row-major, no transposes, alpha 1, beta 0.
  const int n = 96;
  const auto a = random_matrix(n * n, 1);
  const auto b = random_matrix(n * n, 2);
  std::vector<float> c(n * n, -9.0f);
  std::vector<float> expected(n * n);
  cblas_sgemm(CblasRowMajor, CblasNoTrans, CblasNoTrans, n, n, n, 1.0f,
              a.data(), n, b.data(), n, 0.0f, c.data(), n);
  reference::sgemm(false, false, n, n, n, 1.0f, a.data(), n, b.data(), n, 0.0f,
                   expected.data(), n);
  EXPECT_LE(reference::max_abs_diff(expected.data(), c.data(), n, n, n),
            reference::gemm_tolerance(n));
}

class CblasTransposeTest
    : public ::testing::TestWithParam<std::tuple<CBLAS_TRANSPOSE, CBLAS_TRANSPOSE>> {};

TEST_P(CblasTransposeTest, RowMajorAllCombos) {
  const auto [ta, tb] = GetParam();
  const int m = 24;
  const int n = 40;
  const int k = 56;
  // Stored shapes depend on the transpose flags.
  const auto a = random_matrix(static_cast<std::size_t>(m) * k, 3);
  const auto b = random_matrix(static_cast<std::size_t>(k) * n, 4);
  const int lda = ta == CblasTrans ? m : k;
  const int ldb = tb == CblasTrans ? k : n;
  std::vector<float> c(static_cast<std::size_t>(m) * n, 1.0f);
  std::vector<float> expected = c;
  cblas_sgemm(CblasRowMajor, ta, tb, m, n, k, 1.25f, a.data(), lda, b.data(),
              ldb, 0.75f, c.data(), n);
  reference::sgemm(ta == CblasTrans, tb == CblasTrans, m, n, k, 1.25f, a.data(),
                   lda, b.data(), ldb, 0.75f, expected.data(), n);
  EXPECT_LE(reference::max_abs_diff(expected.data(), c.data(), m, n, n),
            reference::gemm_tolerance(k));
}

INSTANTIATE_TEST_SUITE_P(
    AllCombos, CblasTransposeTest,
    ::testing::Combine(::testing::Values(CblasNoTrans, CblasTrans),
                       ::testing::Values(CblasNoTrans, CblasTrans)));

TEST(CblasSgemm, ColMajorMatchesRowMajorTransposedProblem) {
  const int n = 32;
  const auto a = random_matrix(n * n, 5);
  const auto b = random_matrix(n * n, 6);
  std::vector<float> c_col(n * n, 0.0f);
  std::vector<float> c_row(n * n, 0.0f);
  // Column-major C = A*B equals row-major computation on re-interpreted
  // (transposed) storage; validate against explicitly transposed inputs.
  cblas_sgemm(CblasColMajor, CblasNoTrans, CblasNoTrans, n, n, n, 1.0f,
              a.data(), n, b.data(), n, 0.0f, c_col.data(), n);
  // Row-major equivalent: C^T = B^T A^T with the same buffers.
  cblas_sgemm(CblasRowMajor, CblasNoTrans, CblasNoTrans, n, n, n, 1.0f,
              b.data(), n, a.data(), n, 0.0f, c_row.data(), n);
  for (std::size_t i = 0; i < c_col.size(); ++i) {
    ASSERT_EQ(c_col[i], c_row[i]);
  }
}

TEST(CblasSgemm, DegenerateDimensionsAreNoops) {
  std::vector<float> a(4, 1.0f);
  std::vector<float> c(4, 3.0f);
  cblas_sgemm(CblasRowMajor, CblasNoTrans, CblasNoTrans, 0, 2, 2, 1.0f,
              a.data(), 2, a.data(), 2, 0.0f, c.data(), 2);
  EXPECT_EQ(c[0], 3.0f);  // untouched
}

TEST(CblasSgemm, KZeroScalesByBeta) {
  std::vector<float> a(4, 1.0f);
  std::vector<float> c(4, 2.0f);
  cblas_sgemm(CblasRowMajor, CblasNoTrans, CblasNoTrans, 2, 2, 0, 1.0f,
              a.data(), 1, a.data(), 2, 0.5f, c.data(), 2);
  for (const float v : c) {
    EXPECT_EQ(v, 1.0f);
  }
}

TEST(CblasSgemm, RejectsBadLeadingDimension) {
  std::vector<float> buf(64);
  EXPECT_THROW(cblas_sgemm(CblasRowMajor, CblasNoTrans, CblasNoTrans, 4, 4, 8,
                           1.0f, buf.data(), 4 /* < k */, buf.data(), 8, 0.0f,
                           buf.data(), 4),
               util::InvalidArgument);
}

// ---------------------------------------------------------------- vDSP -----

TEST(Vdsp, MmulMatchesCblas) {
  const std::size_t m = 20;
  const std::size_t n = 28;
  const std::size_t p = 36;
  const auto a = random_matrix(m * p, 7);
  const auto b = random_matrix(p * n, 8);
  std::vector<float> c_vdsp(m * n);
  std::vector<float> c_blas(m * n);
  vDSP_mmul(a.data(), 1, b.data(), 1, c_vdsp.data(), 1, m, n, p);
  cblas_sgemm(CblasRowMajor, CblasNoTrans, CblasNoTrans, static_cast<int>(m),
              static_cast<int>(n), static_cast<int>(p), 1.0f, a.data(),
              static_cast<int>(p), b.data(), static_cast<int>(n), 0.0f,
              c_blas.data(), static_cast<int>(n));
  // Both run on the same AMX engine: results are identical, reproducing
  // "the vDSP and BLAS implementations perform nearly identically".
  for (std::size_t i = 0; i < c_vdsp.size(); ++i) {
    ASSERT_EQ(c_vdsp[i], c_blas[i]);
  }
}

TEST(Vdsp, VectorAddSub) {
  const float a[] = {1, 2, 3, 4};
  const float b[] = {10, 20, 30, 40};
  float c[4];
  vDSP_vadd(a, 1, b, 1, c, 1, 4);
  EXPECT_EQ(c[3], 44.0f);
  // vDSP_vsub(B, A, C) computes C = A - B.
  vDSP_vsub(a, 1, b, 1, c, 1, 4);
  EXPECT_EQ(c[0], 9.0f);
  EXPECT_EQ(c[3], 36.0f);
}

TEST(Vdsp, StridedAccess) {
  const float a[] = {1, -1, 2, -1, 3, -1};  // stride 2 reads 1, 2, 3
  float c[6] = {};
  const float scalar = 10.0f;
  vDSP_vsmul(a, 2, &scalar, c, 2, 3);
  EXPECT_EQ(c[0], 10.0f);
  EXPECT_EQ(c[2], 20.0f);
  EXPECT_EQ(c[4], 30.0f);
  EXPECT_EQ(c[1], 0.0f);  // gaps untouched
}

TEST(Vdsp, FillDotSumSquareMax) {
  float buf[5];
  const float value = 2.5f;
  vDSP_vfill(&value, buf, 1, 5);
  for (const float v : buf) {
    EXPECT_EQ(v, 2.5f);
  }

  const float x[] = {1, 2, 3};
  const float y[] = {4, 5, 6};
  float dot = 0.0f;
  vDSP_dotpr(x, 1, y, 1, &dot, 3);
  EXPECT_EQ(dot, 32.0f);

  float sum = 0.0f;
  vDSP_sve(x, 1, &sum, 3);
  EXPECT_EQ(sum, 6.0f);

  float squares[3];
  vDSP_vsq(x, 1, squares, 1, 3);
  EXPECT_EQ(squares[2], 9.0f);

  float max = 0.0f;
  vDSP_maxv(y, 1, &max, 3);
  EXPECT_EQ(max, 6.0f);
}

TEST(Vdsp, MaxvRequiresElements) {
  float x = 1.0f;
  float out;
  EXPECT_THROW(vDSP_maxv(&x, 1, &out, 0), util::InvalidArgument);
}

// ------------------------------------------------------------ reference ----

TEST(ReferenceBlas, ToleranceScalesWithDepth) {
  EXPECT_LT(reference::gemm_tolerance(16), reference::gemm_tolerance(1024));
  EXPECT_GT(reference::gemm_tolerance(16), 0.0f);
}

TEST(ReferenceBlas, MaxAbsDiffFindsWorstCell) {
  const float x[] = {1, 2, 3, 4};
  const float y[] = {1, 2.5f, 3, 3};
  EXPECT_EQ(reference::max_abs_diff(x, y, 2, 2, 2), 1.0f);
}

}  // namespace
}  // namespace ao::accelerate
