#include <gtest/gtest.h>

#include <tuple>

#include "mem/cache_model.hpp"
#include "mem/memory_controller.hpp"
#include "soc/perf_model.hpp"

namespace ao {
namespace {

using soc::ChipModel;
using soc::GemmImpl;
using soc::kAllChipModels;
using soc::kAllGemmImpls;
using soc::kAllStreamKernels;

/// Property sweeps over the full (chip x implementation) grid — the
/// invariants every calibration retune must preserve.
class ChipImplProperty
    : public ::testing::TestWithParam<std::tuple<ChipModel, GemmImpl>> {
 protected:
  ChipModel chip() const { return std::get<0>(GetParam()); }
  GemmImpl impl() const { return std::get<1>(GetParam()); }
};

TEST_P(ChipImplProperty, TimeStrictlyIncreasesWithSize) {
  soc::Soc soc(chip());
  soc::PerfModel perf(soc);
  double prev = 0.0;
  for (std::size_t n = 32; n <= 16384; n *= 2) {
    const double t = perf.gemm_time_ns(impl(), n);
    EXPECT_GT(t, prev);
    prev = t;
  }
}

TEST_P(ChipImplProperty, TimeScalesSuperQuadratically) {
  // Doubling n multiplies flops by ~8; even with saturation effects the
  // modeled time at 2n must exceed 4x the time at n once overheads are
  // amortized (n >= 1024).
  soc::Soc soc(chip());
  soc::PerfModel perf(soc);
  for (std::size_t n = 1024; n <= 8192; n *= 2) {
    EXPECT_GT(perf.gemm_time_ns(impl(), 2 * n),
              4.0 * perf.gemm_time_ns(impl(), n))
        << "n=" << n;
  }
}

TEST_P(ChipImplProperty, GflopsNeverExceedCalibratedPeak) {
  soc::Soc soc(chip());
  soc::PerfModel perf(soc);
  const double peak = soc::gemm_calibration(chip(), impl()).peak_gflops;
  for (std::size_t n = 32; n <= 16384; n *= 2) {
    EXPECT_LE(perf.gemm_gflops(impl(), n), peak * 1.0001) << "n=" << n;
  }
}

TEST_P(ChipImplProperty, PowerMonotoneInSizeAndBounded) {
  soc::Soc soc(chip());
  soc::PerfModel perf(soc);
  const double cap = soc::gemm_calibration(chip(), impl()).power_watts;
  double prev = 0.0;
  for (std::size_t n = 32; n <= 16384; n *= 2) {
    const double w = perf.gemm_power_watts(impl(), n);
    EXPECT_GE(w, prev);
    EXPECT_GT(w, 0.0);
    EXPECT_LE(w, cap + 1e-9);
    prev = w;
  }
}

TEST_P(ChipImplProperty, ThrottlingNeverSpeedsUp) {
  soc::Soc soc(chip());
  soc::PerfModel perf(soc);
  const double cold = perf.gemm_time_ns(impl(), 2048);
  soc.thermal().integrate(20.0, 7200.0);  // two hours of 20 W
  const double hot = perf.gemm_time_ns(impl(), 2048);
  EXPECT_GE(hot, cold);
}

std::string chip_impl_name(
    const ::testing::TestParamInfo<std::tuple<ChipModel, GemmImpl>>& info) {
  std::string name = soc::to_string(std::get<0>(info.param)) + "_" +
                     soc::to_string(std::get<1>(info.param));
  std::erase(name, '-');
  return name;
}

INSTANTIATE_TEST_SUITE_P(Grid, ChipImplProperty,
                         ::testing::Combine(::testing::ValuesIn(kAllChipModels),
                                            ::testing::ValuesIn(kAllGemmImpls)),
                         chip_impl_name);

/// Per-chip properties.
class ChipProperty : public ::testing::TestWithParam<ChipModel> {};

TEST_P(ChipProperty, StreamBandwidthMonotoneInThreads) {
  soc::Soc soc(GetParam());
  soc::PerfModel perf(soc);
  for (const auto kernel : kAllStreamKernels) {
    double prev = 0.0;
    for (int t = 1; t <= soc.spec().total_cpu_cores(); ++t) {
      const double bw = perf.stream_bandwidth_gbs(soc::MemoryAgent::kCpu,
                                                  kernel, t);
      EXPECT_GE(bw, prev);
      prev = bw;
    }
  }
}

TEST_P(ChipProperty, NoAgentBeatsTheFabric) {
  soc::Soc soc(GetParam());
  soc::PerfModel perf(soc);
  const double fabric = soc.spec().memory_bandwidth_gbs;
  for (const auto kernel : kAllStreamKernels) {
    EXPECT_LE(perf.stream_bandwidth_gbs(soc::MemoryAgent::kCpu, kernel,
                                        soc.spec().total_cpu_cores()),
              fabric);
    EXPECT_LE(perf.stream_bandwidth_gbs(soc::MemoryAgent::kGpu, kernel, 1),
              fabric);
    EXPECT_LE(perf.stream_bandwidth_gbs(soc::MemoryAgent::kNeuralEngine,
                                        kernel, 1),
              fabric);
  }
}

TEST_P(ChipProperty, ArbitrationConservesFabricBandwidth) {
  soc::Soc soc(GetParam());
  mem::MemoryController mc(soc);
  const std::array<bool, 3> all_active = {true, true, true};
  double total = 0.0;
  for (const auto agent : {soc::MemoryAgent::kCpu, soc::MemoryAgent::kGpu,
                           soc::MemoryAgent::kNeuralEngine}) {
    const double bw = mc.arbitrated_bandwidth_gbs(agent, all_active);
    EXPECT_GT(bw, 0.0);
    EXPECT_LE(bw, mc.link_ceiling_gbs(agent) + 1e-9);
    total += bw;
  }
  EXPECT_LE(total, mc.fabric_ceiling_gbs() + 1e-9);
}

TEST_P(ChipProperty, CacheLatencyMonotoneInWorkingSet) {
  mem::CacheModel cm(soc::chip_spec(GetParam()));
  for (const auto pattern :
       {mem::AccessPattern::kSequential, mem::AccessPattern::kStrided,
        mem::AccessPattern::kRandom}) {
    double prev = 0.0;
    for (std::size_t ws = 4 * 1024; ws <= 1ull << 30; ws *= 2) {
      const double lat = cm.average_latency_ns(ws, pattern);
      EXPECT_GE(lat, prev - 1e-12);
      EXPECT_GT(lat, 0.0);
      prev = lat;
    }
  }
}

TEST_P(ChipProperty, GenericGpuKernelCostIsMonotone) {
  soc::Soc soc(GetParam());
  soc::PerfModel perf(soc);
  double prev = 0.0;
  for (double flops = 1e6; flops <= 1e13; flops *= 10) {
    const double t = perf.gpu_kernel_time_ns(flops, flops / 4.0);
    EXPECT_GE(t, prev);
    prev = t;
  }
}

TEST_P(ChipProperty, IdlePowerIsTiny) {
  const auto& idle = soc::calibration(GetParam()).idle;
  EXPECT_LT(idle.cpu_watts + idle.gpu_watts + idle.dram_watts, 0.5);
  EXPECT_GT(idle.cpu_watts, 0.0);
}

INSTANTIATE_TEST_SUITE_P(AllChips, ChipProperty,
                         ::testing::ValuesIn(kAllChipModels),
                         [](const auto& info) { return to_string(info.param); });

/// Generational properties across the series.
TEST(GenerationalProperty, EverySuccessorIsFasterAtPeak) {
  // Each generation's MPS and Accelerate peaks strictly improve (Fig. 2).
  for (const auto impl : {GemmImpl::kCpuAccelerate, GemmImpl::kGpuMps,
                          GemmImpl::kGpuNaive}) {
    double prev = 0.0;
    for (const auto chip : kAllChipModels) {
      const double peak = soc::gemm_calibration(chip, impl).peak_gflops;
      EXPECT_GT(peak, prev) << soc::to_string(chip) << "/" << soc::to_string(impl);
      prev = peak;
    }
  }
}

TEST(GenerationalProperty, StreamPeaksNeverRegress) {
  double prev_cpu = 0.0;
  double prev_gpu = 0.0;
  for (const auto chip : kAllChipModels) {
    const auto& s = soc::calibration(chip).stream;
    EXPECT_GE(s.cpu_peak_gbs(), prev_cpu) << soc::to_string(chip);
    EXPECT_GE(s.gpu_peak_gbs(), prev_gpu) << soc::to_string(chip);
    prev_cpu = s.cpu_peak_gbs();
    prev_gpu = s.gpu_peak_gbs();
  }
}

TEST(GenerationalProperty, CalibrationNeverExceedsTheoretical) {
  for (const auto chip : kAllChipModels) {
    const auto& spec = soc::chip_spec(chip);
    const auto& s = soc::calibration(chip).stream;
    EXPECT_LE(s.cpu_peak_gbs(), spec.memory_bandwidth_gbs);
    EXPECT_LE(s.gpu_peak_gbs(), spec.memory_bandwidth_gbs);
    // MPS peak below the GPU's theoretical FP32 peak.
    EXPECT_LE(soc::gemm_calibration(chip, GemmImpl::kGpuMps).peak_gflops,
              spec.gpu_peak_fp32_gflops());
  }
}

}  // namespace
}  // namespace ao
