#include <gtest/gtest.h>

#include <algorithm>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <tuple>
#include <utility>
#include <vector>

#include "mem/cache_model.hpp"
#include "mem/memory_controller.hpp"
#include "orchestrator/result_cache.hpp"
#include "orchestrator/store_index.hpp"
#include "service/frame.hpp"
#include "soc/perf_model.hpp"
#include "util/error.hpp"
#include "util/rng.hpp"

namespace ao {
namespace {

using soc::ChipModel;
using soc::GemmImpl;
using soc::kAllChipModels;
using soc::kAllGemmImpls;
using soc::kAllStreamKernels;

/// Property sweeps over the full (chip x implementation) grid — the
/// invariants every calibration retune must preserve.
class ChipImplProperty
    : public ::testing::TestWithParam<std::tuple<ChipModel, GemmImpl>> {
 protected:
  ChipModel chip() const { return std::get<0>(GetParam()); }
  GemmImpl impl() const { return std::get<1>(GetParam()); }
};

TEST_P(ChipImplProperty, TimeStrictlyIncreasesWithSize) {
  soc::Soc soc(chip());
  soc::PerfModel perf(soc);
  double prev = 0.0;
  for (std::size_t n = 32; n <= 16384; n *= 2) {
    const double t = perf.gemm_time_ns(impl(), n);
    EXPECT_GT(t, prev);
    prev = t;
  }
}

TEST_P(ChipImplProperty, TimeScalesSuperQuadratically) {
  // Doubling n multiplies flops by ~8; even with saturation effects the
  // modeled time at 2n must exceed 4x the time at n once overheads are
  // amortized (n >= 1024).
  soc::Soc soc(chip());
  soc::PerfModel perf(soc);
  for (std::size_t n = 1024; n <= 8192; n *= 2) {
    EXPECT_GT(perf.gemm_time_ns(impl(), 2 * n),
              4.0 * perf.gemm_time_ns(impl(), n))
        << "n=" << n;
  }
}

TEST_P(ChipImplProperty, GflopsNeverExceedCalibratedPeak) {
  soc::Soc soc(chip());
  soc::PerfModel perf(soc);
  const double peak = soc::gemm_calibration(chip(), impl()).peak_gflops;
  for (std::size_t n = 32; n <= 16384; n *= 2) {
    EXPECT_LE(perf.gemm_gflops(impl(), n), peak * 1.0001) << "n=" << n;
  }
}

TEST_P(ChipImplProperty, PowerMonotoneInSizeAndBounded) {
  soc::Soc soc(chip());
  soc::PerfModel perf(soc);
  const double cap = soc::gemm_calibration(chip(), impl()).power_watts;
  double prev = 0.0;
  for (std::size_t n = 32; n <= 16384; n *= 2) {
    const double w = perf.gemm_power_watts(impl(), n);
    EXPECT_GE(w, prev);
    EXPECT_GT(w, 0.0);
    EXPECT_LE(w, cap + 1e-9);
    prev = w;
  }
}

TEST_P(ChipImplProperty, ThrottlingNeverSpeedsUp) {
  soc::Soc soc(chip());
  soc::PerfModel perf(soc);
  const double cold = perf.gemm_time_ns(impl(), 2048);
  soc.thermal().integrate(20.0, 7200.0);  // two hours of 20 W
  const double hot = perf.gemm_time_ns(impl(), 2048);
  EXPECT_GE(hot, cold);
}

std::string chip_impl_name(
    const ::testing::TestParamInfo<std::tuple<ChipModel, GemmImpl>>& info) {
  std::string name = soc::to_string(std::get<0>(info.param)) + "_" +
                     soc::to_string(std::get<1>(info.param));
  std::erase(name, '-');
  return name;
}

INSTANTIATE_TEST_SUITE_P(Grid, ChipImplProperty,
                         ::testing::Combine(::testing::ValuesIn(kAllChipModels),
                                            ::testing::ValuesIn(kAllGemmImpls)),
                         chip_impl_name);

/// Per-chip properties.
class ChipProperty : public ::testing::TestWithParam<ChipModel> {};

TEST_P(ChipProperty, StreamBandwidthMonotoneInThreads) {
  soc::Soc soc(GetParam());
  soc::PerfModel perf(soc);
  for (const auto kernel : kAllStreamKernels) {
    double prev = 0.0;
    for (int t = 1; t <= soc.spec().total_cpu_cores(); ++t) {
      const double bw = perf.stream_bandwidth_gbs(soc::MemoryAgent::kCpu,
                                                  kernel, t);
      EXPECT_GE(bw, prev);
      prev = bw;
    }
  }
}

TEST_P(ChipProperty, NoAgentBeatsTheFabric) {
  soc::Soc soc(GetParam());
  soc::PerfModel perf(soc);
  const double fabric = soc.spec().memory_bandwidth_gbs;
  for (const auto kernel : kAllStreamKernels) {
    EXPECT_LE(perf.stream_bandwidth_gbs(soc::MemoryAgent::kCpu, kernel,
                                        soc.spec().total_cpu_cores()),
              fabric);
    EXPECT_LE(perf.stream_bandwidth_gbs(soc::MemoryAgent::kGpu, kernel, 1),
              fabric);
    EXPECT_LE(perf.stream_bandwidth_gbs(soc::MemoryAgent::kNeuralEngine,
                                        kernel, 1),
              fabric);
  }
}

TEST_P(ChipProperty, ArbitrationConservesFabricBandwidth) {
  soc::Soc soc(GetParam());
  mem::MemoryController mc(soc);
  const std::array<bool, 3> all_active = {true, true, true};
  double total = 0.0;
  for (const auto agent : {soc::MemoryAgent::kCpu, soc::MemoryAgent::kGpu,
                           soc::MemoryAgent::kNeuralEngine}) {
    const double bw = mc.arbitrated_bandwidth_gbs(agent, all_active);
    EXPECT_GT(bw, 0.0);
    EXPECT_LE(bw, mc.link_ceiling_gbs(agent) + 1e-9);
    total += bw;
  }
  EXPECT_LE(total, mc.fabric_ceiling_gbs() + 1e-9);
}

TEST_P(ChipProperty, CacheLatencyMonotoneInWorkingSet) {
  mem::CacheModel cm(soc::chip_spec(GetParam()));
  for (const auto pattern :
       {mem::AccessPattern::kSequential, mem::AccessPattern::kStrided,
        mem::AccessPattern::kRandom}) {
    double prev = 0.0;
    for (std::size_t ws = 4 * 1024; ws <= 1ull << 30; ws *= 2) {
      const double lat = cm.average_latency_ns(ws, pattern);
      EXPECT_GE(lat, prev - 1e-12);
      EXPECT_GT(lat, 0.0);
      prev = lat;
    }
  }
}

TEST_P(ChipProperty, GenericGpuKernelCostIsMonotone) {
  soc::Soc soc(GetParam());
  soc::PerfModel perf(soc);
  double prev = 0.0;
  for (double flops = 1e6; flops <= 1e13; flops *= 10) {
    const double t = perf.gpu_kernel_time_ns(flops, flops / 4.0);
    EXPECT_GE(t, prev);
    prev = t;
  }
}

TEST_P(ChipProperty, IdlePowerIsTiny) {
  const auto& idle = soc::calibration(GetParam()).idle;
  EXPECT_LT(idle.cpu_watts + idle.gpu_watts + idle.dram_watts, 0.5);
  EXPECT_GT(idle.cpu_watts, 0.0);
}

INSTANTIATE_TEST_SUITE_P(AllChips, ChipProperty,
                         ::testing::ValuesIn(kAllChipModels),
                         [](const auto& info) { return to_string(info.param); });

/// Generational properties across the series.
TEST(GenerationalProperty, EverySuccessorIsFasterAtPeak) {
  // Each generation's MPS and Accelerate peaks strictly improve (Fig. 2).
  for (const auto impl : {GemmImpl::kCpuAccelerate, GemmImpl::kGpuMps,
                          GemmImpl::kGpuNaive}) {
    double prev = 0.0;
    for (const auto chip : kAllChipModels) {
      const double peak = soc::gemm_calibration(chip, impl).peak_gflops;
      EXPECT_GT(peak, prev) << soc::to_string(chip) << "/" << soc::to_string(impl);
      prev = peak;
    }
  }
}

TEST(GenerationalProperty, StreamPeaksNeverRegress) {
  double prev_cpu = 0.0;
  double prev_gpu = 0.0;
  for (const auto chip : kAllChipModels) {
    const auto& s = soc::calibration(chip).stream;
    EXPECT_GE(s.cpu_peak_gbs(), prev_cpu) << soc::to_string(chip);
    EXPECT_GE(s.gpu_peak_gbs(), prev_gpu) << soc::to_string(chip);
    prev_cpu = s.cpu_peak_gbs();
    prev_gpu = s.gpu_peak_gbs();
  }
}

TEST(GenerationalProperty, CalibrationNeverExceedsTheoretical) {
  for (const auto chip : kAllChipModels) {
    const auto& spec = soc::chip_spec(chip);
    const auto& s = soc::calibration(chip).stream;
    EXPECT_LE(s.cpu_peak_gbs(), spec.memory_bandwidth_gbs);
    EXPECT_LE(s.gpu_peak_gbs(), spec.memory_bandwidth_gbs);
    // MPS peak below the GPU's theoretical FP32 peak.
    EXPECT_LE(soc::gemm_calibration(chip, GemmImpl::kGpuMps).peak_gflops,
              spec.gpu_peak_fp32_gflops());
  }
}

// ------------------------------------------------------- wire framing ------

/// Random payload bytes of the given size: full byte range, so newlines,
/// NULs and header-lookalike sequences all occur.
std::string random_payload(util::Xoshiro256& rng, std::size_t size) {
  std::string payload;
  payload.reserve(size);
  for (std::size_t i = 0; i < size; ++i) {
    payload.push_back(static_cast<char>(rng.next_below(256)));
  }
  return payload;
}

/// Size grid for the frame round-trip property: the degenerate sizes
/// (0 and 1 byte), sizes straddling internal powers of two, and the hard
/// kMaxFramePayload ceiling itself (64 MiB — a reader must accept exactly
/// the boundary and refuse one byte more).
class FramePayloadSizeProperty
    : public ::testing::TestWithParam<std::size_t> {};

TEST_P(FramePayloadSizeProperty, EncodeThenReadIsIdentity) {
  util::Xoshiro256 rng(0xf4a3e5 + GetParam());
  const std::string payload = random_payload(rng, GetParam());
  std::stringstream wire;
  service::FrameWriter writer;
  writer.write(wire, service::kFrameRecords, payload);
  std::string error;
  const auto frame = service::read_frame(wire, &error);
  ASSERT_TRUE(frame.has_value()) << error;
  EXPECT_EQ(frame->type, service::kFrameRecords);
  EXPECT_EQ(frame->payload, payload);
  EXPECT_FALSE(service::read_frame(wire, &error).has_value());
  EXPECT_EQ(error, "closed");
}

INSTANTIATE_TEST_SUITE_P(
    BoundarySizes, FramePayloadSizeProperty,
    ::testing::Values(std::size_t{0}, std::size_t{1}, std::size_t{2},
                      std::size_t{127}, std::size_t{128}, std::size_t{4095},
                      std::size_t{65536}, service::kMaxFramePayload),
    [](const auto& info) { return "bytes" + std::to_string(info.param); });

TEST(FrameProperty, OversizedPayloadsRefusedOnBothSides) {
  // One byte past the ceiling must fail at encode time...
  const std::string big(service::kMaxFramePayload + 1, 'x');
  std::string scratch;
  EXPECT_THROW(service::encode_frame_into(scratch, "records", big),
               util::InvalidArgument);
  std::ostringstream sink;
  service::FrameWriter writer;
  EXPECT_THROW(writer.write(sink, "records", big), util::InvalidArgument);
  // ...and a forged header claiming that length must fail at read time
  // before the reader allocates anything.
  std::ostringstream hex;
  hex << std::hex << (service::kMaxFramePayload + 1);
  std::istringstream in("@frame1 records " + hex.str() + " 0\n");
  std::string error;
  EXPECT_FALSE(service::read_frame(in, &error).has_value());
  EXPECT_EQ(error, "frame-oversized");
}

TEST(FrameProperty, WriterReusesItsBufferAcrossFrames) {
  // After a warm-up frame at the session's peak payload size, later frames
  // (any smaller size) must not grow the reused encode buffer: the steady
  // state of a long worker conversation is allocation-free.
  util::Xoshiro256 rng(1234);
  std::ostringstream sink;
  service::FrameWriter writer;
  constexpr std::size_t kPeak = 1 << 16;
  writer.write(sink, "records", random_payload(rng, kPeak));
  const std::size_t warm = writer.buffer_capacity();
  for (int round = 0; round < 50; ++round) {
    writer.write(sink, "records", random_payload(rng, rng.next_below(kPeak)));
    EXPECT_EQ(writer.buffer_capacity(), warm) << "round " << round;
  }
}

TEST(FrameProperty, WriterMatchesEncodeFrameByteForByte) {
  // The reused-buffer writer is an optimization, not a dialect: its wire
  // bytes are exactly encode_frame()'s for every frame of a conversation.
  util::Xoshiro256 rng(4321);
  std::ostringstream actual;
  std::string expected;
  service::FrameWriter writer;
  for (int round = 0; round < 30; ++round) {
    const std::string payload = random_payload(rng, rng.next_below(2048));
    writer.write(actual, "records", payload);
    expected += service::encode_frame({"records", payload});
  }
  EXPECT_EQ(actual.str(), expected);
}

TEST(FrameProperty, ConcurrentSessionsNeverAliasWriterBuffers) {
  // Two sessions, each with its own writer (the documented ownership rule):
  // interleaved writes must keep both wires clean — no frame ever carries
  // bytes from the other session's buffer.
  util::Xoshiro256 rng(777);
  std::stringstream wire_a;
  std::stringstream wire_b;
  service::FrameWriter writer_a;
  service::FrameWriter writer_b;
  std::vector<std::string> sent_a;
  std::vector<std::string> sent_b;
  for (int round = 0; round < 40; ++round) {
    const std::string payload =
        "session-" + std::string(1, "ab"[round % 2]) + ":" +
        random_payload(rng, rng.next_below(512));
    if (round % 2 == 0) {
      writer_a.write(wire_a, "records", payload);
      sent_a.push_back(payload);
    } else {
      writer_b.write(wire_b, "records", payload);
      sent_b.push_back(payload);
    }
  }
  std::string error;
  for (const std::string& expected : sent_a) {
    const auto frame = service::read_frame(wire_a, &error);
    ASSERT_TRUE(frame.has_value()) << error;
    EXPECT_EQ(frame->payload, expected);
  }
  for (const std::string& expected : sent_b) {
    const auto frame = service::read_frame(wire_b, &error);
    ASSERT_TRUE(frame.has_value()) << error;
    EXPECT_EQ(frame->payload, expected);
  }
}

TEST(FrameProperty, BatchedRecordLinesSplitBackExactly) {
  // The batched `records` payload shape: entry lines joined with single
  // '\n' separators, no trailing newline. The daemon's getline splitter
  // must recover exactly the coalesced lines, for every batch size.
  util::Xoshiro256 rng(2468);
  for (std::size_t batch = 1; batch <= 32; ++batch) {
    std::vector<std::string> lines;
    std::string payload;
    for (std::size_t i = 0; i < batch; ++i) {
      // Entry-line-shaped content: printable, newline-free.
      std::string line = "entry " + std::to_string(i);
      const std::size_t extra = rng.next_below(40);
      for (std::size_t j = 0; j < extra; ++j) {
        line.push_back(static_cast<char>('a' + rng.next_below(26)));
      }
      if (!payload.empty()) {
        payload += '\n';
      }
      payload += line;
      lines.push_back(std::move(line));
    }
    // A batch of one is byte-identical to the historical single-record
    // frame, so old daemons and new workers interoperate.
    if (batch == 1) {
      EXPECT_EQ(payload, lines[0]);
    }
    std::stringstream wire;
    service::write_frame(wire, {"records", payload});
    std::string error;
    const auto frame = service::read_frame(wire, &error);
    ASSERT_TRUE(frame.has_value()) << error;
    std::vector<std::string> split;
    std::istringstream entries(frame->payload);
    std::string line;
    while (std::getline(entries, line)) {
      split.push_back(line);
    }
    EXPECT_EQ(split, lines) << "batch " << batch;
  }
}

// ----------------------------------------------------- query properties ----

/// A store with duplicate appends and kind/chip/size diversity — the
/// worst-case shape for an index that must keep the newest line per key.
std::string build_query_store(orchestrator::ResultCache& cache,
                              const std::string& tag) {
  const auto path = std::filesystem::temp_directory_path() /
                    ("ao_queryprop_" + tag + ".store");
  std::filesystem::remove(path);
  cache.persist_to(path.string());
  util::Xoshiro256 rng(607);
  for (std::size_t i = 0; i < 36; ++i) {
    orchestrator::CacheKey key;
    key.kind = i % 2 == 0 ? orchestrator::JobKind::kGemmMeasure
                          : orchestrator::JobKind::kSmeGemm;
    key.chip = kAllChipModels[i % 4];
    key.impl = kAllGemmImpls[i % 6];
    key.n = 16 * (1 + i % 5);
    key.payload_fingerprint = 400 + i;
    key.options_fingerprint = 3;
    if (key.kind == orchestrator::JobKind::kSmeGemm) {
      orchestrator::SmeRecord r;
      r.chip = key.chip;
      r.n = key.n;
      r.seed = key.payload_fingerprint;
      r.modeled_gflops = 150.0 + static_cast<double>(i);
      cache.insert(key, r);
    } else {
      harness::GemmMeasurement m;
      m.n = key.n;
      m.chip = key.chip;
      m.impl = key.impl;
      m.best_gflops = 80.0 + static_cast<double>(i);
      m.time_ns.add(1e6 + static_cast<double>(rng.next_below(1000)));
      cache.insert(key, m);
    }
    if (rng.next_below(3) == 0) {
      // Duplicate append: same key, refreshed record — the store now holds
      // a dead line the index must shadow.
      cache.insert(key, *cache.lookup(key));
    }
  }
  return path.string();
}

/// The ground truth a paged traversal must reproduce: every valid entry
/// line of the store file, deduplicated by key (last line wins, exactly the
/// load() replay rule), filtered, in cache_key_less order.
std::vector<std::string> brute_force_scan(
    const std::string& path, const orchestrator::QueryFilter& filter) {
  std::ifstream in(path);
  std::string line;
  std::getline(in, line);  // header
  std::vector<std::pair<orchestrator::CacheKey, std::string>> newest;
  while (std::getline(in, line)) {
    const auto parsed = orchestrator::parse_store_entry(line);
    if (!parsed.has_value()) {
      continue;
    }
    bool replaced = false;
    for (auto& [key, kept] : newest) {
      if (key == parsed->first) {
        kept = line;
        replaced = true;
        break;
      }
    }
    if (!replaced) {
      newest.emplace_back(parsed->first, line);
    }
  }
  std::vector<std::pair<orchestrator::CacheKey, std::string>> matching;
  for (auto& entry : newest) {
    if (filter.matches(entry.first)) {
      matching.push_back(std::move(entry));
    }
  }
  std::sort(matching.begin(), matching.end(),
            [](const auto& a, const auto& b) {
              return orchestrator::cache_key_less(a.first, b.first);
            });
  std::vector<std::string> lines;
  for (auto& [key, kept] : matching) {
    lines.push_back(std::move(kept));
  }
  return lines;
}

/// Concatenation of a full paged traversal at `page_size`, resuming from
/// the cursor of each page.
std::vector<std::string> paged_traversal(
    const orchestrator::ResultCache& cache,
    const orchestrator::QueryFilter& filter, std::size_t page_size) {
  std::vector<std::string> lines;
  std::string cursor;
  while (true) {
    std::string code;
    const auto page = cache.query(filter, page_size, cursor, &code);
    EXPECT_TRUE(page.has_value()) << code;
    if (!page.has_value()) {
      return lines;
    }
    EXPECT_LE(page->lines.size(), page_size);
    lines.insert(lines.end(), page->lines.begin(), page->lines.end());
    if (page->exhausted) {
      return lines;
    }
    EXPECT_FALSE(page->cursor.empty());
    cursor = page->cursor;
  }
}

TEST(QueryProperty, EveryPageSizeConcatenatesBitIdenticallyToTheFullScan) {
  orchestrator::ResultCache cache;
  const std::string path = build_query_store(cache, "pagesizes");

  std::vector<orchestrator::QueryFilter> filters(3);
  filters[1].kind = orchestrator::JobKind::kSmeGemm;
  filters[2].chip = soc::ChipModel::kM2;
  filters[2].n_min = 32;
  filters[2].n_max = 64;

  for (std::size_t f = 0; f < filters.size(); ++f) {
    const auto expected = brute_force_scan(path, filters[f]);
    const auto unpaged = paged_traversal(cache, filters[f], 4096);
    EXPECT_EQ(unpaged, expected) << "filter " << f << " unpaged";
    ASSERT_FALSE(f == 0 && expected.empty());  // the store must have content
    // Every page size from 1 to N reassembles the identical byte stream.
    for (std::size_t page_size = 1; page_size <= expected.size() + 1;
         ++page_size) {
      EXPECT_EQ(paged_traversal(cache, filters[f], page_size), expected)
          << "filter " << f << " page size " << page_size;
    }
  }
  std::filesystem::remove(path);
}

TEST(QueryProperty, RebuiltIndexIsEquivalentToTheIncrementalOne) {
  orchestrator::ResultCache incremental;
  const std::string path = build_query_store(incremental, "rebuild");
  const auto live = incremental.store_index().snapshot();
  ASSERT_FALSE(live.empty());

  // Cold attach of the same file: the scanned-up index must agree with the
  // incrementally maintained one on every key, offset and length.
  {
    orchestrator::ResultCache cold;
    cold.persist_to(path);
    EXPECT_EQ(cold.store_index().snapshot(), live);
  }

  // Compaction rewrites the file; the rebuilt index must again agree with a
  // cold scan of the rewritten bytes — and pages identically.
  orchestrator::QueryFilter all;
  const auto before = paged_traversal(incremental, all, 5);
  incremental.load(path);  // keep evicted lines loadable before the rewrite
  incremental.compact();
  const auto rebuilt = incremental.store_index().snapshot();
  orchestrator::ResultCache cold;
  cold.persist_to(path);
  EXPECT_EQ(cold.store_index().snapshot(), rebuilt);
  EXPECT_EQ(paged_traversal(incremental, all, 5), before);
  std::filesystem::remove(path);
}

}  // namespace
}  // namespace ao
