#include <gtest/gtest.h>

#include <vector>

#include "accelerate/reference_blas.hpp"
#include "mem/unified_memory.hpp"
#include "metal/compute_command_encoder.hpp"
#include "metal/device.hpp"
#include "shaders/default_library.hpp"
#include "shaders/gemm_shaders.hpp"
#include "shaders/stream_kernels.hpp"
#include "util/rng.hpp"

namespace ao::shaders {
namespace {

class ShaderTest : public ::testing::Test {
 protected:
  soc::Soc soc_{soc::ChipModel::kM3};
  mem::UnifiedMemory memory_{soc_};
  metal::Device device_{soc_, memory_};
  metal::CommandQueuePtr queue_ = device_.new_command_queue();

  metal::BufferPtr make_buffer(std::size_t floats) {
    return device_.new_buffer(floats * sizeof(float), mem::StorageMode::kShared);
  }

  void run_stream(const std::string& kernel, metal::Buffer* a, metal::Buffer* b,
                  metal::Buffer* c, std::uint32_t n, float scalar) {
    auto pipeline =
        device_.new_compute_pipeline_state(default_library(), kernel);
    auto cmd = queue_->command_buffer();
    auto enc = cmd->compute_command_encoder();
    enc->set_compute_pipeline_state(pipeline);
    enc->set_buffer(a, 0, 0);
    enc->set_buffer(b, 0, 1);
    enc->set_buffer(c, 0, 2);
    enc->set_value<std::uint32_t>(n, 3);
    enc->set_value<float>(scalar, 4);
    enc->dispatch_threads({n, 1, 1}, {256, 1, 1});
    enc->end_encoding();
    cmd->commit();
    cmd->wait_until_completed();
  }

  /// Runs one of the GEMM shaders functionally and returns C.
  std::vector<float> run_gemm(const std::string& kernel, std::uint32_t n,
                              const std::vector<float>& a,
                              const std::vector<float>& b) {
    auto buf_a = make_buffer(n * n);
    auto buf_b = make_buffer(n * n);
    auto buf_c = make_buffer(n * n);
    std::copy(a.begin(), a.end(), static_cast<float*>(buf_a->contents()));
    std::copy(b.begin(), b.end(), static_cast<float*>(buf_b->contents()));

    auto pipeline =
        device_.new_compute_pipeline_state(default_library(), kernel);
    auto cmd = queue_->command_buffer();
    auto enc = cmd->compute_command_encoder();
    enc->set_compute_pipeline_state(pipeline);
    enc->set_buffer(buf_a.get(), 0, 0);
    enc->set_buffer(buf_b.get(), 0, 1);
    enc->set_buffer(buf_c.get(), 0, 2);
    enc->set_value<std::uint32_t>(n, 3);
    if (kernel == "gemm_tiled") {
      enc->set_threadgroup_memory_length(kGemmTiledScratchBytes);
      const auto groups = (n + kGemmTile - 1) / kGemmTile;
      enc->dispatch_threadgroups({groups, groups, 1},
                                 {kGemmGroupEdge, kGemmGroupEdge, 1});
    } else {
      enc->dispatch_threads({n, n, 1}, {8, 8, 1});
    }
    enc->end_encoding();
    cmd->commit();
    cmd->wait_until_completed();

    const auto* out = static_cast<const float*>(buf_c->contents());
    return {out, out + n * n};
  }

  void check_gemm_against_reference(const std::string& kernel,
                                    std::uint32_t n) {
    std::vector<float> a(n * n);
    std::vector<float> b(n * n);
    util::fill_uniform(std::span<float>(a), 11);
    util::fill_uniform(std::span<float>(b), 22);
    const auto got = run_gemm(kernel, n, a, b);
    std::vector<float> expected(n * n);
    accelerate::reference::sgemm(false, false, n, n, n, 1.0f, a.data(), n,
                                 b.data(), n, 0.0f, expected.data(), n);
    const float err = accelerate::reference::max_abs_diff(
        expected.data(), got.data(), n, n, n);
    EXPECT_LE(err, accelerate::reference::gemm_tolerance(n))
        << kernel << " n=" << n;
  }
};

// --------------------------------------------------------- library ---------

TEST_F(ShaderTest, DefaultLibraryContainsAllKernels) {
  const auto& lib = default_library();
  EXPECT_EQ(lib.size(), 6u);
  for (const auto& name : {"stream_copy", "stream_scale", "stream_add",
                           "stream_triad", "gemm_naive", "gemm_tiled"}) {
    EXPECT_TRUE(lib.contains(name)) << name;
  }
}

TEST_F(ShaderTest, KernelNameHelpers) {
  EXPECT_EQ(stream_kernel_name(soc::StreamKernel::kCopy), "stream_copy");
  EXPECT_EQ(stream_kernel_name(soc::StreamKernel::kTriad), "stream_triad");
}

// ----------------------------------------------------- STREAM kernels ------

TEST_F(ShaderTest, CopyKernel) {
  const std::uint32_t n = 5000;
  auto a = make_buffer(n);
  auto b = make_buffer(n);
  auto c = make_buffer(n);
  auto* pa = static_cast<float*>(a->contents());
  for (std::uint32_t i = 0; i < n; ++i) {
    pa[i] = static_cast<float>(i) * 0.5f;
  }
  run_stream("stream_copy", a.get(), b.get(), c.get(), n, 0.0f);
  const auto* pc = static_cast<const float*>(c->contents());
  for (std::uint32_t i = 0; i < n; ++i) {
    ASSERT_EQ(pc[i], static_cast<float>(i) * 0.5f);
  }
}

TEST_F(ShaderTest, ScaleKernel) {
  const std::uint32_t n = 4096;
  auto a = make_buffer(n);
  auto b = make_buffer(n);
  auto c = make_buffer(n);
  auto* pc = static_cast<float*>(c->contents());
  std::fill(pc, pc + n, 2.0f);
  run_stream("stream_scale", a.get(), b.get(), c.get(), n, 3.0f);
  const auto* pb = static_cast<const float*>(b->contents());
  for (std::uint32_t i = 0; i < n; ++i) {
    ASSERT_EQ(pb[i], 6.0f);
  }
}

TEST_F(ShaderTest, AddKernel) {
  const std::uint32_t n = 3000;
  auto a = make_buffer(n);
  auto b = make_buffer(n);
  auto c = make_buffer(n);
  auto* pa = static_cast<float*>(a->contents());
  auto* pb = static_cast<float*>(b->contents());
  std::fill(pa, pa + n, 1.5f);
  std::fill(pb, pb + n, 2.5f);
  run_stream("stream_add", a.get(), b.get(), c.get(), n, 0.0f);
  const auto* pc = static_cast<const float*>(c->contents());
  for (std::uint32_t i = 0; i < n; ++i) {
    ASSERT_EQ(pc[i], 4.0f);
  }
}

TEST_F(ShaderTest, TriadKernel) {
  const std::uint32_t n = 2048;
  auto a = make_buffer(n);
  auto b = make_buffer(n);
  auto c = make_buffer(n);
  auto* pb = static_cast<float*>(b->contents());
  auto* pc = static_cast<float*>(c->contents());
  std::fill(pb, pb + n, 2.0f);
  std::fill(pc, pc + n, 4.0f);
  run_stream("stream_triad", a.get(), b.get(), c.get(), n, 3.0f);
  const auto* pa = static_cast<const float*>(a->contents());
  for (std::uint32_t i = 0; i < n; ++i) {
    ASSERT_EQ(pa[i], 14.0f);  // 2 + 3*4
  }
}

TEST_F(ShaderTest, StreamEstimatorUsesStreamTiming) {
  // A STREAM dispatch must charge the calibrated bandwidth, not the generic
  // roofline: 3 arrays * n * 4 B at the M3 GPU-Add anchor (90 GB/s).
  const std::uint32_t n = 1u << 20;
  auto a = make_buffer(n);
  auto b = make_buffer(n);
  auto c = make_buffer(n);
  const auto t0 = soc_.clock().now();
  run_stream("stream_add", a.get(), b.get(), c.get(), n, 0.0f);
  const auto dt = static_cast<double>(soc_.clock().now() - t0);
  const double bytes = 3.0 * n * sizeof(float);
  const double expected_ns =
      bytes / 90.0 + soc_.calib().stream.gpu_launch_overhead_ns;
  EXPECT_NEAR(dt, expected_ns, expected_ns * 0.01);
}

// ------------------------------------------------------- GEMM kernels ------

TEST_F(ShaderTest, NaiveGemmMatchesReferencePowerOfTwo) {
  check_gemm_against_reference("gemm_naive", 64);
  check_gemm_against_reference("gemm_naive", 128);
}

TEST_F(ShaderTest, NaiveGemmHandlesRaggedSizes) {
  // Not a multiple of the 8x8 threadgroup: bounds checks must hold.
  check_gemm_against_reference("gemm_naive", 33);
  check_gemm_against_reference("gemm_naive", 100);
}

TEST_F(ShaderTest, TiledGemmMatchesReferenceTileMultiples) {
  check_gemm_against_reference("gemm_tiled", 32);
  check_gemm_against_reference("gemm_tiled", 64);
  check_gemm_against_reference("gemm_tiled", 128);
}

TEST_F(ShaderTest, TiledGemmHandlesRaggedSizes) {
  // Partial edge tiles: 100 = 3*32 + 4; 48 = 32 + 16.
  check_gemm_against_reference("gemm_tiled", 48);
  check_gemm_against_reference("gemm_tiled", 100);
}

TEST_F(ShaderTest, TiledAndNaiveAgree) {
  const std::uint32_t n = 96;
  std::vector<float> a(n * n);
  std::vector<float> b(n * n);
  util::fill_uniform(std::span<float>(a), 5);
  util::fill_uniform(std::span<float>(b), 6);
  const auto naive = run_gemm("gemm_naive", n, a, b);
  const auto tiled = run_gemm("gemm_tiled", n, a, b);
  const float err = accelerate::reference::max_abs_diff(
      naive.data(), tiled.data(), n, n, n);
  EXPECT_LE(err, accelerate::reference::gemm_tolerance(n));
}

TEST_F(ShaderTest, GemmEstimatorsReportCorrectImplClass) {
  // Charged times must follow the per-implementation anchors: the naive
  // shader is *faster* than the tiled one at the same size on M3 (450 vs
  // 270 GFLOPS peak), reproducing the paper's inversion.
  const std::uint32_t n = 128;
  std::vector<float> a(n * n, 0.0f);
  std::vector<float> b(n * n, 0.0f);

  const auto t0 = soc_.clock().now();
  run_gemm("gemm_naive", n, a, b);
  const auto naive_ns = static_cast<double>(soc_.clock().now() - t0);

  const auto t1 = soc_.clock().now();
  run_gemm("gemm_tiled", n, a, b);
  const auto tiled_ns = static_cast<double>(soc_.clock().now() - t1);

  soc::PerfModel perf(soc_);
  EXPECT_NEAR(naive_ns, perf.gemm_time_ns(soc::GemmImpl::kGpuNaive, n),
              naive_ns * 0.05);
  EXPECT_NEAR(tiled_ns, perf.gemm_time_ns(soc::GemmImpl::kGpuCutlass, n),
              tiled_ns * 0.05);
}

}  // namespace
}  // namespace ao::shaders
