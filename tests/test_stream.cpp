#include <gtest/gtest.h>

#include "core/system.hpp"
#include "stream/cpu_stream.hpp"
#include "stream/gpu_stream.hpp"

namespace ao::stream {
namespace {

constexpr std::size_t kSmallArray = 1u << 16;  // keep functional tests fast

// ------------------------------------------------------------ CPU STREAM ---

TEST(CpuStream, ValidationPassesFunctionally) {
  soc::Soc soc(soc::ChipModel::kM1);
  CpuStream bench(soc, kSmallArray);
  // stream.c's check: worst relative error across all arrays ~ 0.
  EXPECT_LT(bench.validate(3), 1e-12);
}

TEST(CpuStream, ModelMatchesCalibrationAtFullThreads) {
  for (const auto chip : soc::kAllChipModels) {
    soc::Soc soc(chip);
    CpuStream bench(soc, kSmallArray);
    const auto result =
        bench.run(soc.spec().total_cpu_cores(), /*repetitions=*/3);
    const auto& anchors = soc::calibration(chip).stream.cpu_gbs;
    for (std::size_t k = 0; k < 4; ++k) {
      EXPECT_NEAR(result.kernels[k].best_gbs, anchors[k], anchors[k] * 0.01)
          << soc::to_string(chip) << " "
          << soc::to_string(soc::kAllStreamKernels[k]);
    }
  }
}

TEST(CpuStream, ThreadSweepIsMonotoneAndPeaksAtFullCores) {
  soc::Soc soc(soc::ChipModel::kM3);
  CpuStream bench(soc, kSmallArray);
  const auto sweep = bench.sweep(/*repetitions=*/2);
  ASSERT_EQ(sweep.per_thread_count.size(),
            static_cast<std::size_t>(soc.spec().total_cpu_cores()));
  double prev = 0.0;
  for (const auto& run : sweep.per_thread_count) {
    const double best = run.best_overall_gbs();
    EXPECT_GE(best, prev);
    prev = best;
  }
  EXPECT_EQ(sweep.best_thread_count, soc.spec().total_cpu_cores());
  EXPECT_NEAR(sweep.best_overall_gbs(),
              soc::calibration(soc::ChipModel::kM3).stream.cpu_peak_gbs(),
              0.5);
}

TEST(CpuStream, M2AnomalyReproduced) {
  // Figure 1 / Section 5.1: M2 CPU Copy and Scale trail Add/Triad by
  // 20-30 GB/s; no other chip shows such a gap.
  for (const auto chip : soc::kAllChipModels) {
    soc::Soc soc(chip);
    CpuStream bench(soc, kSmallArray);
    const auto result = bench.run(soc.spec().total_cpu_cores(), 2);
    const double copy = result.of(soc::StreamKernel::kCopy).best_gbs;
    const double triad = result.of(soc::StreamKernel::kTriad).best_gbs;
    const double gap = triad - copy;
    if (chip == soc::ChipModel::kM2) {
      EXPECT_GE(gap, 20.0);
      EXPECT_LE(gap, 30.0);
    } else {
      EXPECT_LT(gap, 10.0) << soc::to_string(chip);
    }
  }
}

TEST(CpuStream, ChargesCpuActivity) {
  soc::Soc soc(soc::ChipModel::kM1);
  CpuStream bench(soc, kSmallArray);
  bench.run(4, 1);
  ASSERT_FALSE(soc.activity().empty());
  for (const auto& rec : soc.activity().records()) {
    EXPECT_EQ(rec.unit, soc::ComputeUnit::kCpuPCluster);
    EXPECT_GT(rec.watts, 0.0);
  }
}

TEST(CpuStream, RejectsBadArguments) {
  soc::Soc soc(soc::ChipModel::kM1);
  CpuStream bench(soc, kSmallArray);
  EXPECT_THROW(bench.run(0, 1), util::InvalidArgument);
  EXPECT_THROW(bench.run(1, 0), util::InvalidArgument);
  EXPECT_THROW(CpuStream(soc, 8), util::InvalidArgument);  // trivially small
}

// ------------------------------------------------------------ GPU STREAM ---

TEST(GpuStream, ValidationPassesFunctionally) {
  core::System system(soc::ChipModel::kM2);
  GpuStream bench(system.device(), kSmallArray);
  EXPECT_EQ(bench.validate(), 0.0f);  // exact FP32 arithmetic on small values
}

TEST(GpuStream, ModelMatchesCalibration) {
  for (const auto chip : soc::kAllChipModels) {
    core::System system(chip);
    GpuStream bench(system.device());  // default 64 MiB arrays
    const auto result = bench.run(/*repetitions=*/3);
    const auto& anchors = soc::calibration(chip).stream.gpu_gbs;
    for (std::size_t k = 0; k < 4; ++k) {
      // Launch overhead shaves a little off the asymptotic anchor.
      EXPECT_NEAR(result.kernels[k].best_gbs, anchors[k], anchors[k] * 0.05)
          << soc::to_string(chip);
      EXPECT_LT(result.kernels[k].best_gbs, anchors[k]);
    }
  }
}

TEST(GpuStream, UsesSharedZeroCopyBuffers) {
  core::System system(soc::ChipModel::kM1);
  const auto allocated_before = system.memory().allocated_bytes();
  GpuStream bench(system.device(), kSmallArray);
  // Three arrays of 2^16 floats, page-rounded.
  EXPECT_GE(system.memory().allocated_bytes() - allocated_before,
            3u * kSmallArray * sizeof(float));
}

TEST(GpuStream, ChargesGpuActivity) {
  core::System system(soc::ChipModel::kM4);
  GpuStream bench(system.device(), kSmallArray);
  bench.run(1);
  ASSERT_FALSE(system.soc().activity().empty());
  for (const auto& rec : system.soc().activity().records()) {
    EXPECT_EQ(rec.unit, soc::ComputeUnit::kGpu);
  }
}

// -------------------------------------------------- Figure-1 level facts ---

TEST(StreamFigure1, PeaksMatchPaperNumbers) {
  // CPU 59/78/92/103, GPU 60/91/92/100 (within 1%, model vs anchors).
  const std::array<double, 4> cpu_expected = {59, 78, 92, 103};
  const std::array<double, 4> gpu_expected = {60, 91, 92, 100};
  for (std::size_t i = 0; i < soc::kAllChipModels.size(); ++i) {
    const auto chip = soc::kAllChipModels[i];
    core::System system(chip);
    CpuStream cpu(system.soc(), kSmallArray);
    const auto cpu_sweep = cpu.sweep(2);
    EXPECT_NEAR(cpu_sweep.best_overall_gbs(), cpu_expected[i],
                cpu_expected[i] * 0.01)
        << soc::to_string(chip);
    GpuStream gpu(system.device());
    const auto gpu_run = gpu.run(3);
    EXPECT_NEAR(gpu_run.best_overall_gbs(), gpu_expected[i],
                gpu_expected[i] * 0.05)
        << soc::to_string(chip);
  }
}

TEST(StreamFigure1, EightyFivePercentOfTheoretical) {
  // "All chips get to ~85% of theoretical peak bandwidth" (CPU best).
  for (const auto chip : soc::kAllChipModels) {
    soc::Soc soc(chip);
    CpuStream bench(soc, kSmallArray);
    const auto sweep = bench.sweep(2);
    const double frac =
        sweep.best_overall_gbs() / soc.spec().memory_bandwidth_gbs;
    EXPECT_GE(frac, 0.77) << soc::to_string(chip);
    EXPECT_LE(frac, 1.0) << soc::to_string(chip);
  }
}

}  // namespace
}  // namespace ao::stream
