#include <gtest/gtest.h>

#include <vector>

#include "accelerate/reference_blas.hpp"
#include "mem/unified_memory.hpp"
#include "metal/device.hpp"
#include "mps/mps_gemm.hpp"
#include "mps/mps_matrix.hpp"
#include "util/rng.hpp"

namespace ao::mps {
namespace {

class MpsTest : public ::testing::Test {
 protected:
  soc::Soc soc_{soc::ChipModel::kM4};
  mem::UnifiedMemory memory_{soc_};
  metal::Device device_{soc_, memory_};
  metal::CommandQueuePtr queue_ = device_.new_command_queue();

  metal::BufferPtr buffer_with(const std::vector<float>& data) {
    auto buf =
        device_.new_buffer(data.size() * sizeof(float), mem::StorageMode::kShared);
    std::copy(data.begin(), data.end(), static_cast<float*>(buf->contents()));
    return buf;
  }
};

// --------------------------------------------------------- descriptor ------

TEST_F(MpsTest, DescriptorValidation) {
  const auto d = MatrixDescriptor::with_rows(4, 8, 8 * sizeof(float),
                                             DataType::kFloat32);
  EXPECT_EQ(d.rows(), 4u);
  EXPECT_EQ(d.columns(), 8u);
  EXPECT_EQ(d.required_length(), 4u * 8u * sizeof(float));
  // rowBytes below a packed row is illegal.
  EXPECT_THROW(
      MatrixDescriptor::with_rows(4, 8, 4 * sizeof(float), DataType::kFloat32),
      util::InvalidArgument);
  // rowBytes must be element-aligned.
  EXPECT_THROW(MatrixDescriptor::with_rows(4, 8, 33, DataType::kFloat32),
               util::InvalidArgument);
}

TEST_F(MpsTest, DescriptorSupportsPadding) {
  // rowBytes > packed width (row padding, as MPS allows).
  const auto d =
      MatrixDescriptor::with_rows(4, 6, 8 * sizeof(float), DataType::kFloat32);
  EXPECT_EQ(d.row_bytes(), 8 * sizeof(float));
}

TEST_F(MpsTest, MatrixRequiresBigEnoughBuffer) {
  auto buf = device_.new_buffer(64, mem::StorageMode::kShared);
  const auto d = MatrixDescriptor::packed(100, 100, DataType::kFloat32);
  EXPECT_THROW(Matrix(buf.get(), d), util::InvalidArgument);
}

TEST_F(MpsTest, MatrixRowAccess) {
  std::vector<float> data(6 * 4);
  for (std::size_t i = 0; i < data.size(); ++i) {
    data[i] = static_cast<float>(i);
  }
  auto buf = buffer_with(data);
  Matrix m(buf.get(), MatrixDescriptor::packed(6, 4, DataType::kFloat32));
  EXPECT_EQ(m.stride_f32(), 4u);
  EXPECT_EQ(m.row_f32(0)[0], 0.0f);
  EXPECT_EQ(m.row_f32(2)[1], 9.0f);
  EXPECT_THROW(m.row_f32(6), util::InvalidArgument);
}

// ----------------------------------------------------- sgemm_block unit ----

TEST(SgemmBlock, PlainMultiply) {
  const std::size_t n = 37;
  std::vector<float> a(n * n);
  std::vector<float> b(n * n);
  std::vector<float> c(n * n, -1.0f);
  std::vector<float> expected(n * n);
  util::fill_uniform(std::span<float>(a), 1);
  util::fill_uniform(std::span<float>(b), 2);
  detail::sgemm_block(false, false, 0, n, n, n, 1.0f, a.data(), n, b.data(), n,
                      0.0f, c.data(), n);
  accelerate::reference::sgemm(false, false, n, n, n, 1.0f, a.data(), n,
                               b.data(), n, 0.0f, expected.data(), n);
  EXPECT_LE(accelerate::reference::max_abs_diff(expected.data(), c.data(), n, n, n),
            accelerate::reference::gemm_tolerance(n));
}

TEST(SgemmBlock, AlphaBetaAndRowRange) {
  const std::size_t n = 24;
  std::vector<float> a(n * n);
  std::vector<float> b(n * n);
  std::vector<float> c(n * n, 2.0f);
  std::vector<float> expected(n * n, 2.0f);
  util::fill_uniform(std::span<float>(a), 3);
  util::fill_uniform(std::span<float>(b), 4);
  // Rows [8, 16) only, C = 0.5*A*B + 2*C.
  detail::sgemm_block(false, false, 8, 16, n, n, 0.5f, a.data(), n, b.data(), n,
                      2.0f, c.data(), n);
  accelerate::reference::sgemm(false, false, n, n, n, 0.5f, a.data(), n,
                               b.data(), n, 2.0f, expected.data(), n);
  // Untouched rows keep their old value.
  for (std::size_t j = 0; j < n; ++j) {
    EXPECT_EQ(c[0 * n + j], 2.0f);
    EXPECT_EQ(c[(n - 1) * n + j], 2.0f);
  }
  // Computed rows match the reference.
  EXPECT_LE(accelerate::reference::max_abs_diff(expected.data() + 8 * n,
                                                c.data() + 8 * n, 8, n, n),
            accelerate::reference::gemm_tolerance(n));
}

TEST(SgemmBlock, Transposes) {
  const std::size_t n = 19;
  std::vector<float> a(n * n);
  std::vector<float> b(n * n);
  util::fill_uniform(std::span<float>(a), 5);
  util::fill_uniform(std::span<float>(b), 6);
  for (const bool ta : {false, true}) {
    for (const bool tb : {false, true}) {
      std::vector<float> c(n * n, 0.0f);
      std::vector<float> expected(n * n, 0.0f);
      detail::sgemm_block(ta, tb, 0, n, n, n, 1.0f, a.data(), n, b.data(), n,
                          0.0f, c.data(), n);
      accelerate::reference::sgemm(ta, tb, n, n, n, 1.0f, a.data(), n, b.data(),
                                   n, 0.0f, expected.data(), n);
      EXPECT_LE(
          accelerate::reference::max_abs_diff(expected.data(), c.data(), n, n, n),
          accelerate::reference::gemm_tolerance(n))
          << "ta=" << ta << " tb=" << tb;
    }
  }
}

// ----------------------------------------------- MatrixMultiplication ------

TEST_F(MpsTest, Listing2EndToEnd) {
  // The paper's Listing 2 flow: buffers -> descriptors -> matrices ->
  // MPSMatrixMultiplication -> encode -> commit -> waitUntilCompleted.
  const std::size_t n = 64;
  std::vector<float> a(n * n);
  std::vector<float> b(n * n);
  util::fill_uniform(std::span<float>(a), 7);
  util::fill_uniform(std::span<float>(b), 8);
  auto buf_a = buffer_with(a);
  auto buf_b = buffer_with(b);
  auto buf_c = device_.new_buffer(n * n * sizeof(float), mem::StorageMode::kShared);

  const auto desc = MatrixDescriptor::with_rows(n, n, n * sizeof(float),
                                                DataType::kFloat32);
  Matrix mat_a(buf_a.get(), desc);
  Matrix mat_b(buf_b.get(), desc);
  Matrix mat_c(buf_c.get(), desc);

  MatrixMultiplication mm(device_, n, n, n);
  auto cmd = queue_->command_buffer();
  mm.encode_to_command_buffer(*cmd, mat_a, mat_b, mat_c);
  cmd->commit();
  cmd->wait_until_completed();

  std::vector<float> expected(n * n);
  accelerate::reference::sgemm(false, false, n, n, n, 1.0f, a.data(), n,
                               b.data(), n, 0.0f, expected.data(), n);
  EXPECT_LE(accelerate::reference::max_abs_diff(
                expected.data(), static_cast<float*>(buf_c->contents()), n, n, n),
            accelerate::reference::gemm_tolerance(n));
}

TEST_F(MpsTest, NonSquareShapes) {
  const std::size_t m = 48;
  const std::size_t n = 32;
  const std::size_t k = 80;
  std::vector<float> a(m * k);
  std::vector<float> b(k * n);
  util::fill_uniform(std::span<float>(a), 9);
  util::fill_uniform(std::span<float>(b), 10);
  auto buf_a = buffer_with(a);
  auto buf_b = buffer_with(b);
  auto buf_c = device_.new_buffer(m * n * sizeof(float), mem::StorageMode::kShared);

  Matrix mat_a(buf_a.get(), MatrixDescriptor::packed(m, k, DataType::kFloat32));
  Matrix mat_b(buf_b.get(), MatrixDescriptor::packed(k, n, DataType::kFloat32));
  Matrix mat_c(buf_c.get(), MatrixDescriptor::packed(m, n, DataType::kFloat32));

  MatrixMultiplication mm(device_, m, n, k);
  auto cmd = queue_->command_buffer();
  mm.encode_to_command_buffer(*cmd, mat_a, mat_b, mat_c);
  cmd->commit();

  std::vector<float> expected(m * n);
  accelerate::reference::sgemm(false, false, m, n, k, 1.0f, a.data(), k,
                               b.data(), n, 0.0f, expected.data(), n);
  EXPECT_LE(accelerate::reference::max_abs_diff(
                expected.data(), static_cast<float*>(buf_c->contents()), m, n, n),
            accelerate::reference::gemm_tolerance(k));
}

TEST_F(MpsTest, TransposeAndScaling) {
  const std::size_t n = 40;
  std::vector<float> a(n * n);
  std::vector<float> b(n * n);
  std::vector<float> c_init(n * n, 1.0f);
  util::fill_uniform(std::span<float>(a), 11);
  util::fill_uniform(std::span<float>(b), 12);
  auto buf_a = buffer_with(a);
  auto buf_b = buffer_with(b);
  auto buf_c = buffer_with(c_init);

  const auto desc = MatrixDescriptor::packed(n, n, DataType::kFloat32);
  Matrix mat_a(buf_a.get(), desc);
  Matrix mat_b(buf_b.get(), desc);
  Matrix mat_c(buf_c.get(), desc);

  // C = 2 * A^T * B + 0.5 * C
  MatrixMultiplication mm(device_, true, false, n, n, n, 2.0, 0.5);
  auto cmd = queue_->command_buffer();
  mm.encode_to_command_buffer(*cmd, mat_a, mat_b, mat_c);
  cmd->commit();

  std::vector<float> expected(n * n, 1.0f);
  accelerate::reference::sgemm(true, false, n, n, n, 2.0f, a.data(), n,
                               b.data(), n, 0.5f, expected.data(), n);
  EXPECT_LE(accelerate::reference::max_abs_diff(
                expected.data(), static_cast<float*>(buf_c->contents()), n, n, n),
            accelerate::reference::gemm_tolerance(n) * 2.0f);
}

TEST_F(MpsTest, ShapeMismatchRejectedAtEncode) {
  const auto desc = MatrixDescriptor::packed(32, 32, DataType::kFloat32);
  auto buf = device_.new_buffer(32 * 32 * sizeof(float), mem::StorageMode::kShared);
  Matrix m32(buf.get(), desc);
  MatrixMultiplication mm(device_, 64, 64, 64);  // expects 64x64 operands
  auto cmd = queue_->command_buffer();
  EXPECT_THROW(mm.encode_to_command_buffer(*cmd, m32, m32, m32),
               util::InvalidArgument);
}

TEST_F(MpsTest, ChargesGpuMpsTiming) {
  const std::size_t n = 256;
  auto buf_a = device_.new_buffer(n * n * sizeof(float), mem::StorageMode::kShared);
  auto buf_b = device_.new_buffer(n * n * sizeof(float), mem::StorageMode::kShared);
  auto buf_c = device_.new_buffer(n * n * sizeof(float), mem::StorageMode::kShared);
  const auto desc = MatrixDescriptor::packed(n, n, DataType::kFloat32);
  Matrix ma(buf_a.get(), desc);
  Matrix mb(buf_b.get(), desc);
  Matrix mc(buf_c.get(), desc);

  MatrixMultiplication mm(device_, n, n, n);
  mm.set_functional_execution(false);
  const auto t0 = soc_.clock().now();
  auto cmd = queue_->command_buffer();
  mm.encode_to_command_buffer(*cmd, ma, mb, mc);
  cmd->commit();
  const auto dt = static_cast<double>(soc_.clock().now() - t0);

  soc::PerfModel perf(soc_);
  EXPECT_NEAR(dt, perf.gemm_time_ns(soc::GemmImpl::kGpuMps, n), dt * 0.05);
  EXPECT_EQ(soc_.activity().records().back().unit, soc::ComputeUnit::kGpu);
}

TEST_F(MpsTest, Fp16MatricesRejectedByGemm) {
  auto buf = device_.new_buffer(64 * 64 * 2, mem::StorageMode::kShared);
  Matrix half_matrix(buf.get(),
                     MatrixDescriptor::packed(64, 64, DataType::kFloat16));
  auto buf32 = device_.new_buffer(64 * 64 * 4, mem::StorageMode::kShared);
  Matrix f32(buf32.get(), MatrixDescriptor::packed(64, 64, DataType::kFloat32));
  MatrixMultiplication mm(device_, 64, 64, 64);
  auto cmd = queue_->command_buffer();
  EXPECT_THROW(mm.encode_to_command_buffer(*cmd, half_matrix, f32, f32),
               util::InvalidArgument);
}

}  // namespace
}  // namespace ao::mps
