#include <gtest/gtest.h>

#include <atomic>
#include <vector>

#include "mem/unified_memory.hpp"
#include "metal/compute_command_encoder.hpp"
#include "metal/device.hpp"
#include "soc/soc.hpp"
#include "util/aligned_buffer.hpp"
#include "util/error.hpp"

namespace ao::metal {
namespace {

class MetalTest : public ::testing::Test {
 protected:
  soc::Soc soc_{soc::ChipModel::kM1};
  mem::UnifiedMemory memory_{soc_};
  Device device_{soc_, memory_};
};

/// A trivial per-thread kernel writing its global x index.
Kernel make_index_kernel() {
  Kernel k;
  k.name = "write_index";
  k.body = ThreadKernelFn([](const ArgumentTable& args, const ThreadContext& ctx) {
    const auto n = args.value<std::uint32_t>(1);
    const std::uint32_t i = ctx.thread_position_in_grid.x;
    if (i < n) {
      args.buffer_data<float>(0)[i] = static_cast<float>(i);
    }
  });
  k.estimator = [](const ArgumentTable&, const DispatchShape& shape) {
    return WorkEstimate::generic(static_cast<double>(shape.total_threads()),
                                 static_cast<double>(shape.total_threads()) * 4);
  };
  return k;
}

// ------------------------------------------------------------ device -------

TEST_F(MetalTest, DeviceNameAndCores) {
  EXPECT_EQ(device_.name(), "Apple M1");
  EXPECT_EQ(device_.gpu_core_count(), 8);
}

TEST_F(MetalTest, NewBufferAllocatesFromPool) {
  const auto before = memory_.allocated_bytes();
  auto buf = device_.new_buffer(1 << 20, mem::StorageMode::kShared);
  EXPECT_GT(memory_.allocated_bytes(), before);
  EXPECT_EQ(buf->length(), 1u << 20);
  EXPECT_FALSE(buf->is_no_copy());
}

TEST_F(MetalTest, NewBufferRejectsMallocMode) {
  EXPECT_THROW(device_.new_buffer(100, mem::StorageMode::kCpuMalloc),
               util::InvalidArgument);
}

TEST_F(MetalTest, PrivateBufferContentsThrows) {
  auto buf = device_.new_buffer(4096, mem::StorageMode::kPrivate);
  EXPECT_THROW(buf->contents(), util::StateError);
  EXPECT_NE(buf->gpu_contents(), nullptr);  // simulator-side access works
}

// -------------------------------------------------------- no-copy rules ----

TEST_F(MetalTest, NoCopyWrapsPageAlignedMemory) {
  util::AlignedBuffer host(16384);
  auto buf = device_.new_buffer_with_bytes_no_copy(host.data(), host.capacity(),
                                                   mem::StorageMode::kShared);
  EXPECT_TRUE(buf->is_no_copy());
  EXPECT_EQ(buf->contents(), host.data());  // zero-copy: same pointer
}

TEST_F(MetalTest, NoCopyRejectsMisalignedPointer) {
  util::AlignedBuffer host(2 * 16384);
  auto* misaligned = static_cast<std::byte*>(host.data()) + 64;
  EXPECT_THROW(device_.new_buffer_with_bytes_no_copy(misaligned, 16384,
                                                     mem::StorageMode::kShared),
               util::InvalidArgument);
}

TEST_F(MetalTest, NoCopyRejectsPartialPageLength) {
  util::AlignedBuffer host(16384);
  EXPECT_THROW(device_.new_buffer_with_bytes_no_copy(host.data(), 1000,
                                                     mem::StorageMode::kShared),
               util::InvalidArgument);
}

TEST_F(MetalTest, NoCopyRejectsPrivateMode) {
  util::AlignedBuffer host(16384);
  EXPECT_THROW(device_.new_buffer_with_bytes_no_copy(
                   host.data(), 16384, mem::StorageMode::kPrivate),
               util::InvalidArgument);
}

// ------------------------------------------------------ argument table -----

TEST(ArgumentTable, BytesRoundTrip) {
  ArgumentTable args;
  args.set_value<std::uint32_t>(3, 1024);  // (index, value)
  args.set_value<float>(4, 3.5f);
  EXPECT_EQ(args.value<std::uint32_t>(3), 1024u);
  EXPECT_EQ(args.value<float>(4), 3.5f);
}

TEST(ArgumentTable, UnboundSlotThrows) {
  ArgumentTable args;
  EXPECT_THROW(args.value<float>(0), util::InvalidArgument);
  EXPECT_FALSE(args.has_slot(0));
}

TEST(ArgumentTable, SlotLimitEnforced) {
  ArgumentTable args;
  float v = 0.0f;
  EXPECT_THROW(args.set_bytes(31, &v, sizeof(v)), util::InvalidArgument);
}

TEST(ArgumentTable, InlineBytesLimitedTo4K) {
  ArgumentTable args;
  std::vector<std::byte> big(8192);
  EXPECT_THROW(args.set_bytes(0, big.data(), big.size()),
               util::InvalidArgument);
}

TEST(ArgumentTable, WrongKindThrows) {
  ArgumentTable args;
  args.set_value<float>(1.0f, 0);
  EXPECT_THROW(args.buffer(0), util::InvalidArgument);
}

// ------------------------------------------------------------ library ------

TEST_F(MetalTest, LibraryLookup) {
  Library lib("test.metallib");
  lib.add(make_index_kernel());
  EXPECT_TRUE(lib.contains("write_index"));
  EXPECT_EQ(lib.function("write_index").name, "write_index");
  EXPECT_THROW(lib.function("missing"), util::InvalidArgument);
  EXPECT_THROW(lib.add(make_index_kernel()), util::InvalidArgument);  // dup
}

// -------------------------------------------- command buffer lifecycle -----

TEST_F(MetalTest, LifecycleStateMachine) {
  auto queue = device_.new_command_queue();
  auto cmd = queue->command_buffer();
  EXPECT_EQ(cmd->status(), CommandBuffer::Status::kNotEnqueued);
  EXPECT_THROW(cmd->wait_until_completed(), util::StateError);

  auto enc = cmd->compute_command_encoder();
  EXPECT_THROW(cmd->compute_command_encoder(), util::StateError);  // 2nd open
  EXPECT_THROW(cmd->commit(), util::StateError);  // encoder still open
  enc->end_encoding();
  EXPECT_THROW(enc->end_encoding(), util::InvalidArgument);  // twice

  cmd->commit();
  EXPECT_EQ(cmd->status(), CommandBuffer::Status::kCompleted);
  EXPECT_THROW(cmd->commit(), util::StateError);  // double commit
  cmd->wait_until_completed();                    // now legal
}

TEST_F(MetalTest, DispatchWithoutPipelineThrows) {
  auto queue = device_.new_command_queue();
  auto cmd = queue->command_buffer();
  auto enc = cmd->compute_command_encoder();
  EXPECT_THROW(enc->dispatch_threadgroups({1, 1, 1}, {1, 1, 1}),
               util::InvalidArgument);
}

TEST_F(MetalTest, OversizedThreadgroupRejected) {
  auto pipeline = device_.new_compute_pipeline_state(make_index_kernel());
  auto queue = device_.new_command_queue();
  auto cmd = queue->command_buffer();
  auto enc = cmd->compute_command_encoder();
  enc->set_compute_pipeline_state(pipeline);
  EXPECT_THROW(enc->dispatch_threadgroups({1, 1, 1}, {64, 64, 1}),
               util::InvalidArgument);  // 4096 > 1024
}

TEST_F(MetalTest, QueueCountsBuffers) {
  auto queue = device_.new_command_queue();
  auto cmd = queue->command_buffer();
  cmd->compute_command_encoder()->end_encoding();
  cmd->commit();
  EXPECT_EQ(queue->buffers_created(), 1u);
  EXPECT_EQ(queue->buffers_completed(), 1u);
}

// --------------------------------------------------------- execution -------

TEST_F(MetalTest, ThreadKernelCoversGrid) {
  const std::uint32_t n = 1000;
  auto buf = device_.new_buffer(n * sizeof(float), mem::StorageMode::kShared);
  auto pipeline = device_.new_compute_pipeline_state(make_index_kernel());
  auto queue = device_.new_command_queue();
  auto cmd = queue->command_buffer();
  auto enc = cmd->compute_command_encoder();
  enc->set_compute_pipeline_state(pipeline);
  enc->set_buffer(buf.get(), 0, 0);
  enc->set_value<std::uint32_t>(n, 1);
  enc->dispatch_threads({n, 1, 1}, {256, 1, 1});
  enc->end_encoding();
  cmd->commit();
  cmd->wait_until_completed();

  const auto* data = static_cast<const float*>(buf->contents());
  for (std::uint32_t i = 0; i < n; ++i) {
    ASSERT_EQ(data[i], static_cast<float>(i)) << "thread " << i << " missing";
  }
}

TEST_F(MetalTest, CommitAdvancesSimulatedClockAndLogsGpu) {
  auto pipeline = device_.new_compute_pipeline_state(make_index_kernel());
  auto buf = device_.new_buffer(4096, mem::StorageMode::kShared);
  auto queue = device_.new_command_queue();
  const auto t0 = soc_.clock().now();

  auto cmd = queue->command_buffer();
  auto enc = cmd->compute_command_encoder();
  enc->set_compute_pipeline_state(pipeline);
  enc->set_buffer(buf.get(), 0, 0);
  enc->set_value<std::uint32_t>(64, 1);
  enc->dispatch_threads({64, 1, 1}, {64, 1, 1});
  enc->end_encoding();
  cmd->commit();

  EXPECT_GT(soc_.clock().now(), t0);
  EXPECT_GT(cmd->gpu_time_ns(), 0.0);
  ASSERT_FALSE(soc_.activity().empty());
  EXPECT_EQ(soc_.activity().records().back().unit, soc::ComputeUnit::kGpu);
}

TEST_F(MetalTest, NonFunctionalDispatchSkipsWork) {
  const std::uint32_t n = 128;
  auto buf = device_.new_buffer(n * sizeof(float), mem::StorageMode::kShared);
  auto pipeline = device_.new_compute_pipeline_state(make_index_kernel());
  auto queue = device_.new_command_queue();
  auto cmd = queue->command_buffer();
  auto enc = cmd->compute_command_encoder();
  enc->set_compute_pipeline_state(pipeline);
  enc->set_buffer(buf.get(), 0, 0);
  enc->set_value<std::uint32_t>(n, 1);
  enc->set_functional_execution(false);
  enc->dispatch_threads({n, 1, 1}, {64, 1, 1});
  enc->end_encoding();
  const auto t0 = soc_.clock().now();
  cmd->commit();

  // Time was charged, but the buffer is untouched.
  EXPECT_GT(soc_.clock().now(), t0);
  const auto* data = static_cast<const float*>(buf->contents());
  for (std::uint32_t i = 0; i < n; ++i) {
    ASSERT_EQ(data[i], 0.0f);
  }
}

TEST_F(MetalTest, GroupKernelReceivesScratch) {
  Kernel k;
  k.name = "scratch_probe";
  std::atomic<int> groups_seen{0};
  k.body = GroupKernelFn(
      [&groups_seen](const ArgumentTable&, const GroupContext& ctx) {
        // Scratch must be present and writable.
        auto scratch = ctx.threadgroup_span<float>();
        ASSERT_GE(scratch.size(), 16u);
        scratch[0] = 1.0f;
        groups_seen.fetch_add(1);
      });
  k.estimator = [](const ArgumentTable&, const DispatchShape&) {
    return WorkEstimate::generic(1.0, 1.0);
  };
  auto pipeline = device_.new_compute_pipeline_state(k);
  auto queue = device_.new_command_queue();
  auto cmd = queue->command_buffer();
  auto enc = cmd->compute_command_encoder();
  enc->set_compute_pipeline_state(pipeline);
  enc->set_threadgroup_memory_length(64 * sizeof(float));
  enc->dispatch_threadgroups({4, 3, 1}, {8, 8, 1});
  enc->end_encoding();
  cmd->commit();
  EXPECT_EQ(groups_seen.load(), 12);
}

TEST_F(MetalTest, ThreadgroupMemoryBudgetEnforced) {
  auto queue = device_.new_command_queue();
  auto cmd = queue->command_buffer();
  auto enc = cmd->compute_command_encoder();
  EXPECT_THROW(enc->set_threadgroup_memory_length(64 * 1024),
               util::InvalidArgument);  // > 32 KiB
}

TEST_F(MetalTest, DispatchThreadsRoundsUpGroups) {
  // 100 threads at 64-wide groups -> 2 groups; kernels bounds-check.
  const std::uint32_t n = 100;
  auto buf = device_.new_buffer(n * sizeof(float), mem::StorageMode::kShared);
  auto pipeline = device_.new_compute_pipeline_state(make_index_kernel());
  auto queue = device_.new_command_queue();
  auto cmd = queue->command_buffer();
  auto enc = cmd->compute_command_encoder();
  enc->set_compute_pipeline_state(pipeline);
  enc->set_buffer(buf.get(), 0, 0);
  enc->set_value<std::uint32_t>(n, 1);
  enc->dispatch_threads({n, 1, 1}, {64, 1, 1});
  enc->end_encoding();
  cmd->commit();
  const auto* data = static_cast<const float*>(buf->contents());
  EXPECT_EQ(data[99], 99.0f);
}

TEST_F(MetalTest, MultipleDispatchesInOneCommandBuffer) {
  const std::uint32_t n = 64;
  auto buf = device_.new_buffer(n * sizeof(float), mem::StorageMode::kShared);
  auto pipeline = device_.new_compute_pipeline_state(make_index_kernel());
  auto queue = device_.new_command_queue();
  auto cmd = queue->command_buffer();
  auto enc = cmd->compute_command_encoder();
  enc->set_compute_pipeline_state(pipeline);
  enc->set_buffer(buf.get(), 0, 0);
  enc->set_value<std::uint32_t>(n, 1);
  enc->dispatch_threads({n, 1, 1}, {32, 1, 1});
  enc->dispatch_threads({n, 1, 1}, {32, 1, 1});
  enc->end_encoding();
  cmd->commit();
  // Two activity records, one per dispatch.
  EXPECT_EQ(soc_.activity().records().size(), 2u);
}

}  // namespace
}  // namespace ao::metal
