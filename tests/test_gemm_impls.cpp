#include <gtest/gtest.h>

#include <vector>

#include "accelerate/reference_blas.hpp"
#include "core/system.hpp"
#include "gemm/gemm_interface.hpp"
#include "harness/matrix_workload.hpp"

namespace ao::gemm {
namespace {

class GemmImplTest : public ::testing::TestWithParam<soc::GemmImpl> {
 protected:
  core::System system_{soc::ChipModel::kM2};
};

TEST_P(GemmImplTest, MatchesReference) {
  auto impl = create_gemm(GetParam(), system_.gemm_context());
  EXPECT_EQ(impl->kind(), GetParam());
  for (const std::size_t n : {32u, 64u, 128u}) {
    harness::MatrixSet matrices(n, true, 7 + n);
    impl->multiply(n, matrices.memory_length(), matrices.left(),
                   matrices.right(), matrices.out(), /*functional=*/true);
    std::vector<float> expected(n * n);
    accelerate::reference::sgemm(false, false, n, n, n, 1.0f, matrices.left(),
                                 n, matrices.right(), n, 0.0f, expected.data(),
                                 n);
    EXPECT_LE(accelerate::reference::max_abs_diff(expected.data(),
                                                  matrices.out(), n, n, n),
              accelerate::reference::gemm_tolerance(n))
        << impl->name() << " n=" << n;
  }
}

TEST_P(GemmImplTest, ModelOnlySkipsNumericWork) {
  auto impl = create_gemm(GetParam(), system_.gemm_context());
  harness::MatrixSet matrices(64, true);
  const auto t0 = system_.soc().clock().now();
  impl->multiply(64, matrices.memory_length(), matrices.left(),
                 matrices.right(), matrices.out(), /*functional=*/false);
  EXPECT_GT(system_.soc().clock().now(), t0);  // time charged
  for (std::size_t i = 0; i < 64 * 64; ++i) {
    ASSERT_EQ(matrices.out()[i], 0.0f);  // data untouched
  }
}

TEST_P(GemmImplTest, SimulatedTimeMatchesPerfModel) {
  auto impl = create_gemm(GetParam(), system_.gemm_context());
  harness::MatrixSet matrices(128, false);
  soc::PerfModel perf(system_.soc());
  const double expected = perf.gemm_time_ns(GetParam(), 128);
  const auto t0 = system_.soc().clock().now();
  impl->multiply(128, matrices.memory_length(), matrices.left(),
                 matrices.right(), matrices.out(), /*functional=*/false);
  const auto dt = static_cast<double>(system_.soc().clock().now() - t0);
  EXPECT_NEAR(dt, expected, expected * 0.05) << impl->name();
}

TEST_P(GemmImplTest, ActivityLandsOnDeclaredUnit) {
  auto impl = create_gemm(GetParam(), system_.gemm_context());
  harness::MatrixSet matrices(64, false);
  impl->multiply(64, matrices.memory_length(), matrices.left(),
                 matrices.right(), matrices.out(), /*functional=*/false);
  ASSERT_FALSE(system_.soc().activity().empty());
  const auto unit = system_.soc().activity().records().back().unit;
  if (soc::is_gpu_impl(GetParam())) {
    EXPECT_EQ(unit, soc::ComputeUnit::kGpu);
  } else if (GetParam() == soc::GemmImpl::kCpuAccelerate) {
    EXPECT_EQ(unit, soc::ComputeUnit::kAmx);
  } else {
    EXPECT_EQ(unit, soc::ComputeUnit::kCpuPCluster);
  }
}

TEST_P(GemmImplTest, ValidatesArguments) {
  auto impl = create_gemm(GetParam(), system_.gemm_context());
  harness::MatrixSet matrices(32, false);
  EXPECT_THROW(impl->multiply(0, matrices.memory_length(), matrices.left(),
                              matrices.right(), matrices.out(), false),
               util::InvalidArgument);
  EXPECT_THROW(impl->multiply(32, 16 /* too small */, matrices.left(),
                              matrices.right(), matrices.out(), false),
               util::InvalidArgument);
  EXPECT_THROW(impl->multiply(32, matrices.memory_length(), nullptr,
                              matrices.right(), matrices.out(), false),
               util::InvalidArgument);
}

INSTANTIATE_TEST_SUITE_P(
    AllImplementations, GemmImplTest, ::testing::ValuesIn(soc::kAllGemmImpls),
    [](const auto& info) {
      std::string name = soc::to_string(info.param);
      name.erase(std::remove(name.begin(), name.end(), '-'), name.end());
      return name;
    });

// ------------------------------------------------------------- registry ----

TEST(GemmRegistry, CreatesAllSix) {
  core::System system(soc::ChipModel::kM1);
  auto impls = create_all_gemms(system.gemm_context());
  ASSERT_EQ(impls.size(), 6u);
  for (std::size_t i = 0; i < impls.size(); ++i) {
    EXPECT_EQ(impls[i]->kind(), soc::kAllGemmImpls[i]);
  }
}

TEST(GemmRegistry, ImplementationsAgreeWithEachOther) {
  core::System system(soc::ChipModel::kM3);
  auto impls = create_all_gemms(system.gemm_context());
  const std::size_t n = 96;
  harness::MatrixSet matrices(n, true, 55);

  std::vector<float> first;
  for (auto& impl : impls) {
    matrices.clear_out();
    impl->multiply(n, matrices.memory_length(), matrices.left(),
                   matrices.right(), matrices.out(), true);
    if (first.empty()) {
      first.assign(matrices.out(), matrices.out() + n * n);
    } else {
      EXPECT_LE(accelerate::reference::max_abs_diff(first.data(),
                                                    matrices.out(), n, n, n),
                accelerate::reference::gemm_tolerance(n))
          << impl->name() << " disagrees with " << impls.front()->name();
    }
  }
}

TEST(GemmRegistry, GpuImplsWrapZeroCopy) {
  // The GPU paths must accept the page-rounded harness allocations without
  // copying: after a functional run, the harness output array holds the
  // result (proof the shader wrote through the wrapped pointer).
  core::System system(soc::ChipModel::kM4);
  auto impl = create_gemm(soc::GemmImpl::kGpuNaive, system.gemm_context());
  const std::size_t n = 64;
  harness::MatrixSet matrices(n, true);
  impl->multiply(n, matrices.memory_length(), matrices.left(),
                 matrices.right(), matrices.out(), true);
  double sum = 0.0;
  for (std::size_t i = 0; i < n * n; ++i) {
    sum += matrices.out()[i];
  }
  EXPECT_GT(sum, 0.0);
}

}  // namespace
}  // namespace ao::gemm
