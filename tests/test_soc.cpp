#include <gtest/gtest.h>

#include "soc/activity_log.hpp"
#include "soc/benchmark_taxonomy.hpp"
#include "soc/calibration.hpp"
#include "soc/chip_spec.hpp"
#include "soc/device_info.hpp"
#include "soc/frequency_governor.hpp"
#include "soc/sim_clock.hpp"
#include "soc/soc.hpp"
#include "soc/thermal_model.hpp"
#include "util/error.hpp"

namespace ao::soc {
namespace {

// ---------------------------------------------------- chip specs (Table 1) -

TEST(ChipSpec, Table1M1) {
  const ChipSpec& m1 = chip_spec(ChipModel::kM1);
  EXPECT_EQ(m1.name, "M1");
  EXPECT_EQ(m1.process_technology, "5");
  EXPECT_EQ(m1.cpu_architecture, "ARMv8.5-A");
  EXPECT_EQ(m1.performance_cores, 4);
  EXPECT_EQ(m1.efficiency_cores, 4);
  EXPECT_DOUBLE_EQ(m1.p_clock_ghz, 3.2);
  EXPECT_DOUBLE_EQ(m1.e_clock_ghz, 2.06);
  EXPECT_EQ(m1.vector_unit, "NEON");
  EXPECT_EQ(m1.vector_width_bits, 128);
  EXPECT_EQ(m1.l2_mb_p_cluster, 12);
  EXPECT_EQ(m1.gpu_cores_max, 8);
  EXPECT_DOUBLE_EQ(m1.gpu_clock_ghz, 1.27);
  EXPECT_EQ(m1.memory_technology, "LPDDR4X");
  EXPECT_DOUBLE_EQ(m1.memory_bandwidth_gbs, 67.0);
  EXPECT_FALSE(m1.amx_is_sme);
}

TEST(ChipSpec, Table1M2) {
  const ChipSpec& m2 = chip_spec(ChipModel::kM2);
  EXPECT_EQ(m2.cpu_architecture, "ARMv8.6-A");
  EXPECT_DOUBLE_EQ(m2.p_clock_ghz, 3.5);
  EXPECT_EQ(m2.l2_mb_p_cluster, 16);
  EXPECT_EQ(m2.memory_technology, "LPDDR5");
  EXPECT_DOUBLE_EQ(m2.memory_bandwidth_gbs, 100.0);
  EXPECT_NE(m2.amx_precisions.find("BF16"), std::string::npos);
}

TEST(ChipSpec, Table1M3) {
  const ChipSpec& m3 = chip_spec(ChipModel::kM3);
  EXPECT_EQ(m3.process_technology, "3");
  EXPECT_DOUBLE_EQ(m3.p_clock_ghz, 4.05);
  EXPECT_DOUBLE_EQ(m3.gpu_clock_ghz, 1.38);
  EXPECT_DOUBLE_EQ(m3.memory_bandwidth_gbs, 100.0);
}

TEST(ChipSpec, Table1M4) {
  const ChipSpec& m4 = chip_spec(ChipModel::kM4);
  EXPECT_EQ(m4.cpu_architecture, "ARMv9.2-A");
  EXPECT_EQ(m4.performance_cores, 4);
  EXPECT_EQ(m4.efficiency_cores, 6);  // M4 has 4P + 6E
  EXPECT_DOUBLE_EQ(m4.p_clock_ghz, 4.4);
  EXPECT_TRUE(m4.amx_is_sme);  // standardized ARM SME on M4
  EXPECT_EQ(m4.memory_technology, "LPDDR5X");
  EXPECT_DOUBLE_EQ(m4.memory_bandwidth_gbs, 120.0);
  EXPECT_DOUBLE_EQ(m4.theoretical_fp32_tflops_max, 4.26);
}

TEST(ChipSpec, GenerationalBandwidthProgression) {
  // 67 -> 100 -> 100 -> 120 GB/s across the series.
  EXPECT_LT(chip_spec(ChipModel::kM1).memory_bandwidth_gbs,
            chip_spec(ChipModel::kM2).memory_bandwidth_gbs);
  EXPECT_EQ(chip_spec(ChipModel::kM2).memory_bandwidth_gbs,
            chip_spec(ChipModel::kM3).memory_bandwidth_gbs);
  EXPECT_LT(chip_spec(ChipModel::kM3).memory_bandwidth_gbs,
            chip_spec(ChipModel::kM4).memory_bandwidth_gbs);
}

TEST(ChipSpec, NeuralEngineAlways16Cores) {
  for (const auto model : kAllChipModels) {
    EXPECT_EQ(chip_spec(model).neural_engine_cores, 16);
  }
}

TEST(ChipSpec, NameRoundTrip) {
  for (const auto model : kAllChipModels) {
    EXPECT_EQ(chip_model_from_string(to_string(model)), model);
  }
  EXPECT_EQ(chip_model_from_string("m3"), ChipModel::kM3);
  EXPECT_THROW(chip_model_from_string("M5"), util::InvalidArgument);
}

TEST(ChipSpec, PageSizeMatchesApple) {
  EXPECT_EQ(ChipSpec::kPageSize, 16384u);
}

TEST(ChipSpec, NeonPeakIsPositiveAndGrows) {
  double prev = 0.0;
  for (const auto model : kAllChipModels) {
    const double peak = chip_spec(model).cpu_neon_peak_fp32_gflops();
    EXPECT_GT(peak, prev);
    prev = peak;
  }
}

// ------------------------------------------------------ devices (Table 3) --

TEST(DeviceInfo, Table3Devices) {
  EXPECT_EQ(device_info(ChipModel::kM1).device, "MacBook Air");
  EXPECT_EQ(device_info(ChipModel::kM2).device, "Mac mini");
  EXPECT_EQ(device_info(ChipModel::kM3).device, "MacBook Air");
  EXPECT_EQ(device_info(ChipModel::kM4).device, "Mac mini");
}

TEST(DeviceInfo, CoolingSplit) {
  EXPECT_TRUE(device_info(ChipModel::kM1).is_laptop());
  EXPECT_FALSE(device_info(ChipModel::kM2).is_laptop());
  EXPECT_TRUE(device_info(ChipModel::kM3).is_laptop());
  EXPECT_FALSE(device_info(ChipModel::kM4).is_laptop());
}

TEST(DeviceInfo, MemoryConfigurations) {
  EXPECT_EQ(device_info(ChipModel::kM1).memory_gb, 8);
  EXPECT_EQ(device_info(ChipModel::kM2).memory_gb, 8);
  EXPECT_EQ(device_info(ChipModel::kM3).memory_gb, 16);
  EXPECT_EQ(device_info(ChipModel::kM4).memory_gb, 16);
}

TEST(DeviceInfo, ReleaseYears) {
  EXPECT_EQ(device_info(ChipModel::kM1).release_year, 2020);
  EXPECT_EQ(device_info(ChipModel::kM4).release_year, 2024);
}

// ----------------------------------------------------------- taxonomy ------

TEST(Taxonomy, StreamByteAccounting) {
  EXPECT_EQ(stream_arrays_touched(StreamKernel::kCopy), 2);
  EXPECT_EQ(stream_arrays_touched(StreamKernel::kScale), 2);
  EXPECT_EQ(stream_arrays_touched(StreamKernel::kAdd), 3);
  EXPECT_EQ(stream_arrays_touched(StreamKernel::kTriad), 3);
}

TEST(Taxonomy, StreamFlopAccounting) {
  EXPECT_EQ(stream_flops_per_element(StreamKernel::kCopy), 0);
  EXPECT_EQ(stream_flops_per_element(StreamKernel::kScale), 1);
  EXPECT_EQ(stream_flops_per_element(StreamKernel::kAdd), 1);
  EXPECT_EQ(stream_flops_per_element(StreamKernel::kTriad), 2);
}

TEST(Taxonomy, GemmFlopFormula) {
  // n^2 (2n - 1), the paper's count.
  EXPECT_DOUBLE_EQ(gemm_flops(1), 1.0);
  EXPECT_DOUBLE_EQ(gemm_flops(2), 4.0 * 3.0);
  EXPECT_DOUBLE_EQ(gemm_flops(1024), 1024.0 * 1024.0 * 2047.0);
}

TEST(Taxonomy, ImplementationTable2Columns) {
  EXPECT_EQ(gemm_framework(GemmImpl::kCpuSingle), "C++");
  EXPECT_EQ(gemm_framework(GemmImpl::kCpuAccelerate), "Accelerate");
  EXPECT_EQ(gemm_framework(GemmImpl::kGpuMps), "Metal");
  EXPECT_EQ(gemm_hardware(GemmImpl::kCpuOmp), "CPU");
  EXPECT_EQ(gemm_hardware(GemmImpl::kGpuCutlass), "GPU");
  EXPECT_TRUE(is_gpu_impl(GemmImpl::kGpuNaive));
  EXPECT_FALSE(is_gpu_impl(GemmImpl::kCpuAccelerate));
}

// --------------------------------------------------------- calibration -----

TEST(Calibration, StreamPeaksMatchPaperFigure1) {
  // "M1 to M4 (respectively) see up to 59, 78, 92, and 103 GB/s for CPU;
  //  60, 91, 92, and 100 GB/s for GPU."
  EXPECT_DOUBLE_EQ(calibration(ChipModel::kM1).stream.cpu_peak_gbs(), 59.0);
  EXPECT_DOUBLE_EQ(calibration(ChipModel::kM2).stream.cpu_peak_gbs(), 78.0);
  EXPECT_DOUBLE_EQ(calibration(ChipModel::kM3).stream.cpu_peak_gbs(), 92.0);
  EXPECT_DOUBLE_EQ(calibration(ChipModel::kM4).stream.cpu_peak_gbs(), 103.0);
  EXPECT_DOUBLE_EQ(calibration(ChipModel::kM1).stream.gpu_peak_gbs(), 60.0);
  EXPECT_DOUBLE_EQ(calibration(ChipModel::kM2).stream.gpu_peak_gbs(), 91.0);
  EXPECT_DOUBLE_EQ(calibration(ChipModel::kM3).stream.gpu_peak_gbs(), 92.0);
  EXPECT_DOUBLE_EQ(calibration(ChipModel::kM4).stream.gpu_peak_gbs(), 100.0);
}

TEST(Calibration, M2CpuCopyScaleAnomaly) {
  // "The M2 CPU deviates with a 20-30 GB/s gap comparing the Copy and Scale
  //  to other kernels."
  const auto& s = calibration(ChipModel::kM2).stream;
  const double copy = s.cpu_gbs[static_cast<int>(StreamKernel::kCopy)];
  const double triad = s.cpu_gbs[static_cast<int>(StreamKernel::kTriad)];
  EXPECT_GE(triad - copy, 20.0);
  EXPECT_LE(triad - copy, 30.0);
}

TEST(Calibration, GemmPeaksMatchPaperSection52) {
  // Accelerate: 0.90 / 1.09 / 1.38 / 1.49 TFLOPS.
  EXPECT_DOUBLE_EQ(
      gemm_calibration(ChipModel::kM1, GemmImpl::kCpuAccelerate).peak_gflops,
      900.0);
  EXPECT_DOUBLE_EQ(
      gemm_calibration(ChipModel::kM4, GemmImpl::kCpuAccelerate).peak_gflops,
      1490.0);
  // MPS: 1.36 / 2.24 / 2.47 / 2.90 TFLOPS.
  EXPECT_DOUBLE_EQ(gemm_calibration(ChipModel::kM1, GemmImpl::kGpuMps).peak_gflops,
                   1360.0);
  EXPECT_DOUBLE_EQ(gemm_calibration(ChipModel::kM4, GemmImpl::kGpuMps).peak_gflops,
                   2900.0);
  // Naive shader beats the Cutlass-style shader in the paper's own numbers.
  for (const auto chip : kAllChipModels) {
    EXPECT_GT(gemm_calibration(chip, GemmImpl::kGpuNaive).peak_gflops,
              gemm_calibration(chip, GemmImpl::kGpuCutlass).peak_gflops);
  }
}

TEST(Calibration, PowerAnchorsYieldPaperEfficiencies) {
  // MPS: 0.21 / 0.40 / 0.46 / 0.33 TFLOPS/W (Section 5.3).
  const std::array<double, 4> expected = {210.0, 400.0, 460.0, 330.0};
  for (std::size_t i = 0; i < kAllChipModels.size(); ++i) {
    const auto& g = gemm_calibration(kAllChipModels[i], GemmImpl::kGpuMps);
    EXPECT_NEAR(g.peak_gflops / g.power_watts, expected[i],
                expected[i] * 0.05);
  }
}

TEST(Calibration, AllPowersWithinPaperRange) {
  // "Power consumption varies from a few Watts to 10-20 Watts."
  for (const auto chip : kAllChipModels) {
    for (const auto impl : kAllGemmImpls) {
      const auto& g = gemm_calibration(chip, impl);
      EXPECT_GT(g.power_watts, 1.0);
      EXPECT_LE(g.power_watts, 20.5);
    }
  }
}

// ----------------------------------------------------------- sim clock -----

TEST(SimClock, AdvancesMonotonically) {
  SimClock clock;
  EXPECT_EQ(clock.now(), 0u);
  clock.advance(1000.4);
  EXPECT_EQ(clock.now(), 1000u);
  clock.advance_ns(500);
  EXPECT_EQ(clock.now(), 1500u);
  clock.reset();
  EXPECT_EQ(clock.now(), 0u);
}

TEST(SimClock, RejectsNegative) {
  SimClock clock;
  EXPECT_THROW(clock.advance(-1.0), util::InvalidArgument);
}

// --------------------------------------------------------- activity log ----

TEST(ActivityLog, EnergyInWindowProratesOverlap) {
  ActivityLog log;
  // 10 W for 1 simulated second.
  log.record({0, 1'000'000'000, ComputeUnit::kGpu, 10.0, 1.0});
  EXPECT_NEAR(log.energy_in_window(ComputeUnit::kGpu, 0, 1'000'000'000), 10.0,
              1e-9);
  // Half the interval -> half the energy.
  EXPECT_NEAR(log.energy_in_window(ComputeUnit::kGpu, 0, 500'000'000), 5.0,
              1e-9);
  // Disjoint window -> nothing.
  EXPECT_EQ(log.energy_in_window(ComputeUnit::kGpu, 2'000'000'000,
                                 3'000'000'000),
            0.0);
  // Other unit -> nothing.
  EXPECT_EQ(log.energy_in_window(ComputeUnit::kAmx, 0, 1'000'000'000), 0.0);
}

TEST(ActivityLog, TotalsAcrossUnits) {
  ActivityLog log;
  log.record({0, 1'000'000'000, ComputeUnit::kGpu, 5.0, 0.5});
  log.record({0, 1'000'000'000, ComputeUnit::kAmx, 3.0, 0.5});
  EXPECT_NEAR(log.total_energy_in_window(0, 1'000'000'000), 8.0, 1e-9);
}

TEST(ActivityLog, BusySeconds) {
  ActivityLog log;
  log.record({100, 1100, ComputeUnit::kCpuPCluster, 1.0, 1.0});
  EXPECT_NEAR(
      log.busy_seconds_in_window(ComputeUnit::kCpuPCluster, 0, 10'000),
      1e-6, 1e-12);
}

TEST(ActivityLog, RejectsInvertedInterval) {
  ActivityLog log;
  EXPECT_THROW(log.record({100, 50, ComputeUnit::kGpu, 1.0, 1.0}),
               util::InvalidArgument);
}

// -------------------------------------------------------- thermal model ----

TEST(ThermalModel, StartsAtAmbientNoThrottle) {
  ThermalModel t(CoolingSolution::kPassive);
  EXPECT_DOUBLE_EQ(t.temperature_celsius(), t.ambient_celsius());
  EXPECT_DOUBLE_EQ(t.throttle_factor(), 1.0);
}

TEST(ThermalModel, HeatsUnderLoadCoolsAtIdle) {
  ThermalModel t(CoolingSolution::kPassive);
  t.integrate(15.0, 60.0);
  const double hot = t.temperature_celsius();
  EXPECT_GT(hot, t.ambient_celsius());
  t.cool(600.0);
  EXPECT_LT(t.temperature_celsius(), hot);
  EXPECT_NEAR(t.temperature_celsius(), t.ambient_celsius(), 1.0);
}

TEST(ThermalModel, PassiveThrottlesBeforeActive) {
  ThermalModel laptop(CoolingSolution::kPassive);
  ThermalModel desktop(CoolingSolution::kActiveAir);
  // Sustained 20 W load for 10 minutes.
  laptop.integrate(20.0, 600.0);
  desktop.integrate(20.0, 600.0);
  EXPECT_GT(laptop.temperature_celsius(), desktop.temperature_celsius());
  EXPECT_LT(laptop.throttle_factor(), 1.0);
  EXPECT_GT(laptop.throttle_factor(), 0.8);
  EXPECT_DOUBLE_EQ(desktop.throttle_factor(), 1.0);
}

TEST(ThermalModel, ThrottleBoundedByFloor) {
  ThermalModel t(CoolingSolution::kPassive);
  t.integrate(100.0, 10'000.0);  // absurd sustained load
  EXPECT_GE(t.throttle_factor(), 0.8);
}

TEST(ThermalModel, ResetRestoresAmbient) {
  ThermalModel t(CoolingSolution::kActiveAir);
  t.integrate(30.0, 300.0);
  t.reset();
  EXPECT_DOUBLE_EQ(t.temperature_celsius(), t.ambient_celsius());
}

// ----------------------------------------------------------- governor ------

TEST(FrequencyGovernor, SingleCoreBoostsAllCoreDerates) {
  const ChipSpec& m1 = chip_spec(ChipModel::kM1);
  FrequencyGovernor gov(m1);
  const double single =
      gov.effective_clock_ghz(ComputeUnit::kCpuPCluster, 1, 1.0);
  const double all = gov.effective_clock_ghz(ComputeUnit::kCpuPCluster, 4, 1.0);
  EXPECT_DOUBLE_EQ(single, m1.p_clock_ghz);
  EXPECT_NEAR(all, m1.p_clock_ghz * FrequencyGovernor::kAllCoreDerate, 1e-12);
  EXPECT_LT(all, single);
}

TEST(FrequencyGovernor, ThrottleScalesClock) {
  const ChipSpec& m4 = chip_spec(ChipModel::kM4);
  FrequencyGovernor gov(m4);
  const double full = gov.effective_clock_ghz(ComputeUnit::kGpu, 1, 1.0);
  const double throttled = gov.effective_clock_ghz(ComputeUnit::kGpu, 1, 0.9);
  EXPECT_NEAR(throttled, full * 0.9, 1e-12);
}

TEST(FrequencyGovernor, RejectsBadInputs) {
  FrequencyGovernor gov(chip_spec(ChipModel::kM1));
  EXPECT_THROW(gov.effective_clock_ghz(ComputeUnit::kGpu, -1, 1.0),
               util::InvalidArgument);
  EXPECT_THROW(gov.effective_clock_ghz(ComputeUnit::kGpu, 1, 0.0),
               util::InvalidArgument);
}

// ----------------------------------------------------------- Soc -----------

TEST(Soc, ExecuteAdvancesClockLogsAndHeats) {
  Soc soc(ChipModel::kM1);
  const double t_amb = soc.thermal().temperature_celsius();
  const auto start = soc.execute(ComputeUnit::kGpu, 1e9, 6.5, 0.8);
  EXPECT_EQ(start, 0u);
  EXPECT_EQ(soc.clock().now(), 1'000'000'000u);
  ASSERT_EQ(soc.activity().records().size(), 1u);
  const auto& rec = soc.activity().records().front();
  EXPECT_EQ(rec.unit, ComputeUnit::kGpu);
  EXPECT_DOUBLE_EQ(rec.watts, 6.5);
  EXPECT_GT(soc.thermal().temperature_celsius(), t_amb);
}

TEST(Soc, IdleAdvancesWithoutActivity) {
  Soc soc(ChipModel::kM2);
  soc.idle(5e8);
  EXPECT_EQ(soc.clock().now(), 500'000'000u);
  EXPECT_TRUE(soc.activity().empty());
}

TEST(Soc, ResetRestoresBootState) {
  Soc soc(ChipModel::kM3);
  soc.execute(ComputeUnit::kAmx, 1e9, 5.0, 1.0);
  soc.reset();
  EXPECT_EQ(soc.clock().now(), 0u);
  EXPECT_TRUE(soc.activity().empty());
  EXPECT_DOUBLE_EQ(soc.thermal().temperature_celsius(),
                   soc.thermal().ambient_celsius());
}

TEST(Soc, MemoryCapacityTracksDevice) {
  EXPECT_EQ(Soc(ChipModel::kM1).memory_capacity_bytes(), 8ull << 30);
  EXPECT_EQ(Soc(ChipModel::kM4).memory_capacity_bytes(), 16ull << 30);
}

TEST(Soc, RejectsBadUtilization) {
  Soc soc(ChipModel::kM1);
  EXPECT_THROW(soc.execute(ComputeUnit::kGpu, 1.0, 1.0, 1.5),
               util::InvalidArgument);
}

}  // namespace
}  // namespace ao::soc
