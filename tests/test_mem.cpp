#include <gtest/gtest.h>

#include "mem/cache_model.hpp"
#include "mem/memory_controller.hpp"
#include "mem/storage_mode.hpp"
#include "mem/unified_memory.hpp"
#include "util/error.hpp"
#include "util/units.hpp"

namespace ao::mem {
namespace {

// -------------------------------------------------------- storage modes ----

TEST(StorageMode, AccessibilityRules) {
  // Section 2.4: malloc memory is CPU-only; shared buffers are zero-copy for
  // both; private is GPU-only.
  EXPECT_TRUE(cpu_accessible(StorageMode::kCpuMalloc));
  EXPECT_FALSE(gpu_accessible(StorageMode::kCpuMalloc));
  EXPECT_TRUE(cpu_accessible(StorageMode::kShared));
  EXPECT_TRUE(gpu_accessible(StorageMode::kShared));
  EXPECT_FALSE(cpu_accessible(StorageMode::kPrivate));
  EXPECT_TRUE(gpu_accessible(StorageMode::kPrivate));
  EXPECT_TRUE(cpu_accessible(StorageMode::kManaged));
  EXPECT_TRUE(gpu_accessible(StorageMode::kManaged));
}

TEST(StorageMode, TransferRequirements) {
  EXPECT_TRUE(requires_explicit_transfer(StorageMode::kCpuMalloc));
  EXPECT_FALSE(requires_explicit_transfer(StorageMode::kShared));
  EXPECT_TRUE(requires_explicit_transfer(StorageMode::kManaged));
}

// ------------------------------------------------------- unified memory ----

class UnifiedMemoryTest : public ::testing::Test {
 protected:
  soc::Soc soc_{soc::ChipModel::kM1};  // 8 GB device
  UnifiedMemory pool_{soc_};
};

TEST_F(UnifiedMemoryTest, CapacityMatchesDevice) {
  EXPECT_EQ(pool_.capacity_bytes(), 8ull * util::kGiB);
  EXPECT_EQ(pool_.allocated_bytes(), 0u);
}

TEST_F(UnifiedMemoryTest, AllocationIsPageGranular) {
  auto r = pool_.allocate(100, StorageMode::kShared);
  EXPECT_EQ(r->length(), 100u);
  EXPECT_EQ(r->reserved(), UnifiedMemory::kPageSize);
  EXPECT_EQ(pool_.allocated_bytes(), UnifiedMemory::kPageSize);
  EXPECT_TRUE(util::AlignedBuffer::is_aligned(r->data(),
                                              UnifiedMemory::kPageSize));
}

TEST_F(UnifiedMemoryTest, RaiiReturnsBytes) {
  {
    auto r = pool_.allocate(1 << 20, StorageMode::kPrivate);
    EXPECT_EQ(pool_.live_allocations(), 1u);
    EXPECT_GT(pool_.allocated_bytes(), 0u);
  }
  EXPECT_EQ(pool_.live_allocations(), 0u);
  EXPECT_EQ(pool_.allocated_bytes(), 0u);
  EXPECT_GT(pool_.peak_allocated_bytes(), 0u);  // peak is sticky
}

TEST_F(UnifiedMemoryTest, CapacityEnforced) {
  // Two 5 GiB regions cannot coexist in an 8 GiB device.
  auto first = pool_.allocate(5ull * util::kGiB, StorageMode::kShared);
  EXPECT_THROW(pool_.allocate(5ull * util::kGiB, StorageMode::kShared),
               util::ResourceExhausted);
  // After releasing, it fits.
  first.reset();
  EXPECT_NO_THROW(pool_.allocate(5ull * util::kGiB, StorageMode::kShared));
}

TEST_F(UnifiedMemoryTest, ZeroLengthRejected) {
  EXPECT_THROW(pool_.allocate(0, StorageMode::kShared), util::InvalidArgument);
}

TEST_F(UnifiedMemoryTest, RegionIdsAreUnique) {
  auto a = pool_.allocate(100, StorageMode::kShared);
  auto b = pool_.allocate(100, StorageMode::kShared);
  EXPECT_NE(a->id(), b->id());
}

TEST_F(UnifiedMemoryTest, SpanViewIsWritable) {
  auto r = pool_.allocate(64 * sizeof(float), StorageMode::kShared);
  auto span = r->as_span<float>();
  span[0] = 42.0f;
  span[63] = -1.0f;
  EXPECT_EQ(r->as_span<float>()[0], 42.0f);
  EXPECT_EQ(r->as_span<float>()[63], -1.0f);
}

// ----------------------------------------------------- memory controller ---

TEST(MemoryController, IsolatedAgentsGetLinkCeilings) {
  soc::Soc soc(soc::ChipModel::kM4);
  MemoryController mc(soc);
  EXPECT_DOUBLE_EQ(mc.link_ceiling_gbs(soc::MemoryAgent::kCpu), 103.0);
  EXPECT_DOUBLE_EQ(mc.link_ceiling_gbs(soc::MemoryAgent::kGpu), 100.0);
  EXPECT_DOUBLE_EQ(mc.fabric_ceiling_gbs(), 120.0);
  EXPECT_DOUBLE_EQ(
      mc.arbitrated_bandwidth_gbs(soc::MemoryAgent::kCpu, {true, false, false}),
      103.0);
}

TEST(MemoryController, ContentionSharesFabric) {
  soc::Soc soc(soc::ChipModel::kM4);
  MemoryController mc(soc);
  const std::array<bool, 3> both = {true, true, false};
  const double cpu = mc.arbitrated_bandwidth_gbs(soc::MemoryAgent::kCpu, both);
  const double gpu = mc.arbitrated_bandwidth_gbs(soc::MemoryAgent::kGpu, both);
  // Combined demand 203 GB/s exceeds the 120 GB/s fabric: scaled down.
  EXPECT_LT(cpu, 103.0);
  EXPECT_LT(gpu, 100.0);
  EXPECT_NEAR(cpu + gpu, 120.0, 1e-9);
  // Proportional shares preserve the CPU's slight link advantage.
  EXPECT_GT(cpu, gpu);
}

TEST(MemoryController, NoContentionWhenFabricSuffices) {
  // On M1 (67 GB/s fabric), CPU alone (59) fits under the fabric ceiling.
  soc::Soc soc(soc::ChipModel::kM1);
  MemoryController mc(soc);
  EXPECT_DOUBLE_EQ(
      mc.arbitrated_bandwidth_gbs(soc::MemoryAgent::kCpu, {true, false, false}),
      59.0);
}

TEST(MemoryController, TransferTime) {
  soc::Soc soc(soc::ChipModel::kM2);
  MemoryController mc(soc);
  // 91 GB at 91 GB/s (GPU alone) = 1 simulated second.
  const double ns = mc.transfer_time_ns(soc::MemoryAgent::kGpu,
                                        91'000'000'000ull, {false, true, false});
  EXPECT_NEAR(ns, 1e9, 1e3);
}

TEST(MemoryController, InactiveAgentQueryThrows) {
  soc::Soc soc(soc::ChipModel::kM1);
  MemoryController mc(soc);
  EXPECT_THROW(
      mc.arbitrated_bandwidth_gbs(soc::MemoryAgent::kCpu, {false, true, false}),
      util::InvalidArgument);
}

// ---------------------------------------------------------- cache model ----

TEST(CacheModel, HierarchyFromSpec) {
  CacheModel cm(soc::chip_spec(soc::ChipModel::kM1));
  ASSERT_EQ(cm.levels().size(), 3u);
  EXPECT_EQ(cm.levels()[0].name, "L1");
  EXPECT_EQ(cm.levels()[0].capacity_bytes, 128u * 1024u);
  EXPECT_EQ(cm.levels()[1].capacity_bytes, 12u * 1024u * 1024u);
}

TEST(CacheModel, ResidentWorkingSetHits) {
  CacheModel cm(soc::chip_spec(soc::ChipModel::kM2));
  EXPECT_DOUBLE_EQ(cm.hit_rate(0, 64 * 1024, AccessPattern::kSequential), 1.0);
  EXPECT_LT(cm.hit_rate(0, 64 * 1024 * 1024, AccessPattern::kSequential), 0.01);
}

TEST(CacheModel, LatencyMonotonicInWorkingSet) {
  CacheModel cm(soc::chip_spec(soc::ChipModel::kM3));
  double prev = 0.0;
  for (std::size_t ws = 16 * 1024; ws <= 512ull * 1024 * 1024; ws *= 4) {
    const double lat = cm.average_latency_ns(ws, AccessPattern::kSequential);
    EXPECT_GE(lat, prev);
    prev = lat;
  }
}

TEST(CacheModel, RandomWorseThanSequential) {
  CacheModel cm(soc::chip_spec(soc::ChipModel::kM1));
  const std::size_t ws = 64ull * 1024 * 1024;
  EXPECT_GT(cm.average_latency_ns(ws, AccessPattern::kRandom),
            cm.average_latency_ns(ws, AccessPattern::kSequential));
  EXPECT_LT(cm.effective_bandwidth_gbs(ws, AccessPattern::kRandom),
            cm.effective_bandwidth_gbs(ws, AccessPattern::kSequential));
}

TEST(CacheModel, GemmKneeNearCalibrationDecay) {
  // The L2 knee (3 n^2 floats > L2) should sit near the calibrated decay
  // midpoint used for CPU-Single (n_decay = 1200).
  CacheModel cm(soc::chip_spec(soc::ChipModel::kM2));  // 16 MB L2
  const std::size_t knee = cm.gemm_l2_knee();
  EXPECT_GT(knee, 900u);
  EXPECT_LT(knee, 1400u);
}

TEST(CacheModel, M1DramSlowerThanM2) {
  // LPDDR4X (M1) carries a higher first-word latency than LPDDR5 (M2+).
  CacheModel m1(soc::chip_spec(soc::ChipModel::kM1));
  CacheModel m2(soc::chip_spec(soc::ChipModel::kM2));
  EXPECT_GT(m1.dram_latency_ns(), m2.dram_latency_ns());
}

TEST(CacheModel, LevelOutOfRangeThrows) {
  CacheModel cm(soc::chip_spec(soc::ChipModel::kM1));
  EXPECT_THROW(cm.hit_rate(5, 1024, AccessPattern::kSequential),
               util::InvalidArgument);
}

}  // namespace
}  // namespace ao::mem
