#include <gtest/gtest.h>

#include <algorithm>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <map>
#include <string>
#include <thread>
#include <tuple>
#include <vector>

#include "core/system.hpp"
#include "harness/experiment.hpp"
#include "harness/matrix_workload.hpp"
#include "orchestrator/campaign.hpp"
#include "orchestrator/job.hpp"
#include "orchestrator/plan_cache.hpp"
#include "orchestrator/record.hpp"
#include "orchestrator/result_cache.hpp"
#include "orchestrator/scheduler.hpp"
#include "stream/cpu_stream.hpp"
#include "util/error.hpp"

namespace ao::orchestrator {
namespace {

// ------------------------------------------------------------- job queue ---

ExperimentJob gemm_job(std::size_t n, int priority = 0) {
  ExperimentJob job;
  job.kind = JobKind::kGemmMeasure;
  job.n = n;
  job.priority = priority;
  return job;
}

TEST(JobQueue, DependentsWaitForTheirMeasurement) {
  JobQueue queue;
  const JobId a = queue.push(gemm_job(64));
  ExperimentJob verify;
  verify.kind = JobKind::kGemmVerify;
  verify.n = 64;
  verify.parent = a;
  const JobId b = queue.push(verify, {a});

  auto first = queue.try_pop_ready();
  ASSERT_TRUE(first.has_value());
  EXPECT_EQ(first->id, a);
  // The verify job is pushed but not ready until its measurement finishes.
  EXPECT_FALSE(queue.try_pop_ready().has_value());
  queue.mark_done(a);
  auto second = queue.try_pop_ready();
  ASSERT_TRUE(second.has_value());
  EXPECT_EQ(second->id, b);
  queue.mark_done(b);
  EXPECT_TRUE(queue.all_done());
}

TEST(JobQueue, PriorityOrdersReadyJobs) {
  JobQueue queue;
  const JobId small = queue.push(gemm_job(32, /*priority=*/32));
  const JobId large = queue.push(gemm_job(4096, /*priority=*/4096));
  const JobId mid = queue.push(gemm_job(256, /*priority=*/256));

  EXPECT_EQ(queue.try_pop_ready()->id, large);
  EXPECT_EQ(queue.try_pop_ready()->id, mid);
  EXPECT_EQ(queue.try_pop_ready()->id, small);
  // Equal priority falls back to submission order.
  JobQueue tie;
  const JobId first = tie.push(gemm_job(64, 7));
  tie.push(gemm_job(64, 7));
  EXPECT_EQ(tie.try_pop_ready()->id, first);
}

TEST(JobQueue, UnknownDependencyThrows) {
  JobQueue queue;
  EXPECT_THROW(queue.push(gemm_job(64), {JobId{999}}), util::InvalidArgument);
}

TEST(JobQueue, DoneDependencyCountsAsSatisfied) {
  JobQueue queue;
  const JobId a = queue.push(gemm_job(64));
  queue.try_pop_ready();
  queue.mark_done(a);
  queue.push(gemm_job(128), {a});
  EXPECT_TRUE(queue.try_pop_ready().has_value());
}

TEST(JobQueue, PopReadyReturnsNulloptWhenDrained) {
  JobQueue queue;
  const JobId a = queue.push(gemm_job(64));
  EXPECT_EQ(queue.pop_ready()->id, a);
  queue.mark_done(a);
  EXPECT_FALSE(queue.pop_ready().has_value());
  EXPECT_FALSE(JobQueue{}.pop_ready().has_value());
}

// ----------------------------------------------------------- result cache --

harness::GemmMeasurement measurement_stub(std::size_t n) {
  harness::GemmMeasurement m;
  m.n = n;
  m.best_gflops = static_cast<double>(n);
  return m;
}

CacheKey gemm_key(soc::ChipModel chip, soc::GemmImpl impl, std::size_t n,
                  std::uint64_t options_fp) {
  CacheKey key;
  key.kind = JobKind::kGemmMeasure;
  key.chip = chip;
  key.impl = impl;
  key.n = n;
  key.options_fingerprint = options_fp;
  return key;
}

const harness::GemmMeasurement& as_gemm(
    const std::optional<MeasurementRecord>& record) {
  return std::get<harness::GemmMeasurement>(record.value());
}

TEST(ResultCache, HitMissAndLruEviction) {
  ResultCache cache(2);
  const std::uint64_t fp = 1;
  const CacheKey k1 = gemm_key(soc::ChipModel::kM1, soc::GemmImpl::kGpuMps, 64, fp);
  const CacheKey k2 = gemm_key(soc::ChipModel::kM1, soc::GemmImpl::kGpuMps, 128, fp);
  const CacheKey k3 = gemm_key(soc::ChipModel::kM2, soc::GemmImpl::kGpuMps, 64, fp);

  EXPECT_FALSE(cache.lookup(k1).has_value());
  cache.insert(k1, measurement_stub(64));
  cache.insert(k2, measurement_stub(128));
  EXPECT_EQ(cache.size(), 2u);

  // Touch k1 so k2 becomes the least recently used, then overflow.
  EXPECT_TRUE(cache.lookup(k1).has_value());
  cache.insert(k3, measurement_stub(64));
  EXPECT_EQ(cache.size(), 2u);
  EXPECT_TRUE(cache.contains(k1));
  EXPECT_FALSE(cache.contains(k2));  // evicted
  EXPECT_TRUE(cache.contains(k3));

  const auto stats = cache.stats();
  EXPECT_EQ(stats.insertions, 3u);
  EXPECT_EQ(stats.evictions, 1u);
  EXPECT_EQ(stats.hits, 1u);
  EXPECT_EQ(stats.misses, 1u);
  EXPECT_EQ(as_gemm(cache.lookup(k1)).n, 64u);
}

TEST(ResultCache, OptionsFingerprintCoversMeasurementIdentity) {
  harness::GemmExperiment::Options base;
  const std::uint64_t fp = options_fingerprint(base);
  EXPECT_EQ(fp, options_fingerprint(base));  // stable

  auto seeded = base;
  seeded.matrix_seed = 43;
  EXPECT_NE(fp, options_fingerprint(seeded));

  auto reps = base;
  reps.repetitions = 7;
  EXPECT_NE(fp, options_fingerprint(reps));

  auto ceilings = base;
  ceilings.functional_n_max[soc::GemmImpl::kGpuMps] = 0;
  EXPECT_NE(fp, options_fingerprint(ceilings));

  auto power = base;
  power.use_powermetrics = false;
  EXPECT_NE(fp, options_fingerprint(power));
}

// ------------------------------------------------------- disk persistence --

std::string temp_store(const std::string& name) {
  const auto path =
      std::filesystem::temp_directory_path() / ("ao_test_" + name + ".aocache");
  std::remove(path.string().c_str());
  return path.string();
}

StreamRecord stream_stub(soc::ChipModel chip, bool gpu) {
  StreamRecord r;
  r.chip = chip;
  r.gpu = gpu;
  r.run.threads = gpu ? 0 : 4;
  for (std::size_t k = 0; k < 4; ++k) {
    r.run.kernels[k].kernel = soc::kAllStreamKernels[k];
    r.run.kernels[k].bytes_per_pass = 1000 + k;
    r.run.kernels[k].best_gbs = 100.5 + static_cast<double>(k);
    r.run.kernels[k].avg_gbs = 90.25 + static_cast<double>(k);
    r.run.kernels[k].min_time_ns = 1e6 / (k + 1);
  }
  return r;
}

PrecisionRecord precision_stub() {
  PrecisionRecord r;
  r.chip = soc::ChipModel::kM3;
  r.n = 64;
  r.seed = 7;
  precision::StudyResult row;
  row.format = precision::Format::kFp16;
  row.n = 64;
  row.max_abs_error = 0.125;
  row.mean_abs_error = 0.03125;
  row.significant_digits = 3.5;
  row.modeled_gflops = 4321.0;
  row.executing_unit = "GPU/ANE (FP16)";
  r.rows.push_back(row);
  return r;
}

AneRecord ane_stub() {
  AneRecord r;
  r.chip = soc::ChipModel::kM4;
  r.m = 64;
  r.n = 64;
  r.k = 64;
  r.target = ane::DispatchTarget::kNeuralEngine;
  r.duration_ns = 123456.5;
  r.gflops = 9300.0;
  r.gflops_per_watt = 2200.0;
  r.mean_output = 16.02;
  return r;
}

PowerRecord power_stub() {
  PowerRecord r;
  r.chip = soc::ChipModel::kM2;
  r.sample.window_seconds = 1.0;
  r.sample.cpu_mw = 95.5;
  r.sample.gpu_mw = 10.25;
  r.sample.ane_mw = 1.5;
  r.sample.dram_mw = 30.0;
  r.sample.combined_mw = 107.25;
  return r;
}

Fp64EmuRecord fp64emu_stub() {
  Fp64EmuRecord r;
  r.chip = soc::ChipModel::kM1;
  r.n = 24;
  r.seed = 11;
  r.emu_max_abs_error = 2.5e-13;
  r.fp32_max_abs_error = 4.0e-6;
  r.emulated_gflops = 250.5;
  r.fp32_gflops = 2630.25;
  return r;
}

SmeRecord sme_stub() {
  SmeRecord r;
  r.chip = soc::ChipModel::kM4;
  r.n = 32;
  r.seed = 13;
  r.max_abs_diff = 0.0;
  r.matches_amx = true;
  r.mean_output = 7.98;
  r.modeled_gflops = 1780.5;
  return r;
}

/// One key per record family, as key_for_job would build them.
std::map<std::string, std::pair<CacheKey, MeasurementRecord>> sample_entries() {
  std::map<std::string, std::pair<CacheKey, MeasurementRecord>> entries;
  harness::GemmMeasurement m = measurement_stub(64);
  m.chip = soc::ChipModel::kM1;
  m.impl = soc::GemmImpl::kGpuMps;
  m.time_ns.add(1.5e6);
  m.time_ns.add(2.5e6);
  m.functional = true;
  m.verified = true;
  m.max_error = 1.25e-4f;
  entries["gemm"] = {gemm_key(m.chip, m.impl, 64, 42), m};

  ExperimentJob stream_job;
  stream_job.kind = JobKind::kStream;
  stream_job.chip = soc::ChipModel::kM2;
  stream_job.stream_threads = 4;
  entries["stream"] = {key_for_job(stream_job, 0),
                       stream_stub(soc::ChipModel::kM2, false)};

  ExperimentJob gpu_job;
  gpu_job.kind = JobKind::kGpuStream;
  gpu_job.chip = soc::ChipModel::kM2;
  entries["gpu-stream"] = {key_for_job(gpu_job, 0),
                           stream_stub(soc::ChipModel::kM2, true)};

  ExperimentJob study_job;
  study_job.kind = JobKind::kPrecisionStudy;
  study_job.chip = soc::ChipModel::kM3;
  study_job.n = 64;
  study_job.study_seed = 7;
  entries["precision"] = {key_for_job(study_job, 0), precision_stub()};

  ExperimentJob ane_job;
  ane_job.kind = JobKind::kAneInference;
  ane_job.chip = soc::ChipModel::kM4;
  ane_job.n = 64;
  entries["ane"] = {key_for_job(ane_job, 0), ane_stub()};

  ExperimentJob power_job;
  power_job.kind = JobKind::kPowerIdle;
  power_job.chip = soc::ChipModel::kM2;
  entries["power"] = {key_for_job(power_job, 0), power_stub()};

  ExperimentJob fp64emu_job;
  fp64emu_job.kind = JobKind::kFp64Emulation;
  fp64emu_job.chip = soc::ChipModel::kM1;
  fp64emu_job.n = 24;
  fp64emu_job.study_seed = 11;
  entries["fp64emu"] = {key_for_job(fp64emu_job, 0), fp64emu_stub()};

  ExperimentJob sme_job;
  sme_job.kind = JobKind::kSmeGemm;
  sme_job.chip = soc::ChipModel::kM4;
  sme_job.n = 32;
  sme_job.study_seed = 13;
  entries["sme"] = {key_for_job(sme_job, 0), sme_stub()};
  return entries;
}

TEST(MeasurementRecord, SerializationRoundTripsEveryKind) {
  for (const auto& [name, entry] : sample_entries()) {
    const auto round_tripped = deserialize_record(serialize_record(entry.second));
    ASSERT_TRUE(round_tripped.has_value()) << name;
    EXPECT_EQ(record_kind(*round_tripped), record_kind(entry.second)) << name;
    EXPECT_TRUE(*round_tripped == entry.second) << name;
  }
}

TEST(ResultCachePersistence, SaveLoadRoundTripHitsEveryKind) {
  const std::string path = temp_store("round_trip");
  const auto entries = sample_entries();

  ResultCache cache;
  for (const auto& [name, entry] : entries) {
    cache.insert(entry.first, entry.second);
  }
  EXPECT_EQ(cache.save(path), entries.size());

  ResultCache cold;  // a separate process's cold in-memory cache
  EXPECT_EQ(cold.load(path), entries.size());
  EXPECT_EQ(cold.size(), entries.size());
  for (const auto& [name, entry] : entries) {
    const auto hit = cold.lookup(entry.first);
    ASSERT_TRUE(hit.has_value()) << name;
    EXPECT_TRUE(*hit == entry.second) << name;
  }
  EXPECT_EQ(cold.stats().loaded, entries.size());
  EXPECT_EQ(cold.stats().load_rejected, 0u);
  std::remove(path.c_str());
}

TEST(ResultCachePersistence, WriteThroughAppendsEachInsertion) {
  const std::string path = temp_store("write_through");
  const auto entries = sample_entries();
  {
    ResultCache cache;
    cache.persist_to(path);
    std::size_t inserted = 0;
    for (const auto& [name, entry] : entries) {
      cache.insert(entry.first, entry.second);
      ++inserted;
      // Every insertion is already on disk — a crash loses nothing.
      ResultCache probe;
      EXPECT_EQ(probe.load(path), inserted) << name;
    }
  }
  ResultCache cold;
  EXPECT_EQ(cold.load(path), entries.size());
  // Warm-then-persist across a third process keeps the store coherent.
  cold.persist_to(path);
  ExperimentJob extra;
  extra.kind = JobKind::kPowerIdle;
  extra.chip = soc::ChipModel::kM4;
  cold.insert(key_for_job(extra, 0), power_stub());
  ResultCache final_probe;
  EXPECT_EQ(final_probe.load(path), entries.size() + 1);
  std::remove(path.c_str());
}

TEST(ResultCachePersistence, SaveOntoActivePathCompactsAndKeepsAppending) {
  const std::string path = temp_store("compact");
  ResultCache cache;
  cache.persist_to(path);
  const auto entries = sample_entries();
  const auto& gemm_entry = entries.at("gemm");
  // Insert the same key twice: the write-through log now holds a duplicate.
  cache.insert(gemm_entry.first, gemm_entry.second);
  cache.insert(gemm_entry.first, gemm_entry.second);
  // save() onto the active path compacts the store...
  EXPECT_EQ(cache.save(path), 1u);
  // ...and the append stream must follow the new file, not the old inode.
  cache.insert(entries.at("power").first, entries.at("power").second);
  ResultCache cold;
  EXPECT_EQ(cold.load(path), 2u);
  EXPECT_TRUE(cold.contains(gemm_entry.first));
  EXPECT_TRUE(cold.contains(entries.at("power").first));
  std::remove(path.c_str());
}

TEST(ResultCachePersistence, StreamKeyNormalizesTheDefaultElementsSentinel) {
  ExperimentJob implicit_default;
  implicit_default.kind = JobKind::kStream;
  implicit_default.stream_threads = 4;
  auto explicit_default = implicit_default;
  explicit_default.stream_elements = stream::CpuStream::kDefaultElements;
  // 0 means "module default": both describe the identical measurement.
  EXPECT_TRUE(key_for_job(implicit_default, 0) ==
              key_for_job(explicit_default, 0));
}

TEST(ResultCachePersistence, AneKeyCoversOperandSeed) {
  ExperimentJob job;
  job.kind = JobKind::kAneInference;
  job.chip = soc::ChipModel::kM1;
  job.n = 64;
  auto reseeded = job;
  reseeded.study_seed = job.study_seed + 1;
  // mean_output depends on the operand seed, so the keys must differ.
  EXPECT_FALSE(key_for_job(job, 0) == key_for_job(reseeded, 0));
}

TEST(ResultCachePersistence, VersionMismatchRejectsWholeFile) {
  const std::string path = temp_store("version_mismatch");
  ResultCache cache;
  const auto entries = sample_entries();
  for (const auto& [name, entry] : entries) {
    cache.insert(entry.first, entry.second);
  }
  cache.save(path);

  // Rewrite the header to a future version; every entry line stays intact.
  std::ifstream in(path);
  std::string content((std::istreambuf_iterator<char>(in)),
                      std::istreambuf_iterator<char>());
  in.close();
  const auto newline = content.find('\n');
  ASSERT_NE(newline, std::string::npos);
  std::ofstream out(path, std::ios::trunc);
  out << "ao-result-cache v999" << content.substr(newline);
  out.close();

  ResultCache cold;
  EXPECT_EQ(cold.load(path), 0u);
  EXPECT_EQ(cold.size(), 0u);
  EXPECT_EQ(cold.stats().load_rejected, 1u);
  // And write-through refuses to append to it.
  EXPECT_THROW(cold.persist_to(path), util::Error);
  std::remove(path.c_str());
}

TEST(ResultCachePersistence, CorruptEntriesAreSkippedNotFatal) {
  const std::string path = temp_store("corruption");
  const auto entries = sample_entries();
  {
    ResultCache cache;
    for (const auto& [name, entry] : entries) {
      cache.insert(entry.first, entry.second);
    }
    cache.save(path);
  }
  // Flip a byte inside the second entry, append a garbage line and a
  // truncated entry (a write-through run killed mid-append).
  std::ifstream in(path);
  std::string line;
  std::vector<std::string> lines;
  while (std::getline(in, line)) {
    lines.push_back(line);
  }
  in.close();
  ASSERT_GE(lines.size(), 3u);
  lines[2][lines[2].size() / 2] ^= 0x1;
  std::ofstream out(path, std::ios::trunc);
  for (const auto& l : lines) {
    out << l << '\n';
  }
  out << "not an entry at all\n";
  out << lines[1].substr(0, lines[1].size() / 2);  // no trailing newline
  out.close();

  ResultCache cold;
  // All but the flipped entry load (the truncated tail re-adds a duplicate
  // prefix that fails its digest).
  EXPECT_EQ(cold.load(path), entries.size() - 1);
  EXPECT_EQ(cold.stats().load_rejected, 3u);
  std::remove(path.c_str());
}

// ------------------------------------------------- system + batch leasing --

TEST(SystemPool, LeaseHandsOutBootStateAndRecycles) {
  SystemPool pool;
  {
    auto lease = pool.acquire(soc::ChipModel::kM1);
    EXPECT_EQ(lease.system().soc().clock().now(), 0u);
    EXPECT_EQ(lease.system().soc().clock().epoch(), lease.boot_epoch());
    lease.system().soc().idle(5e9);  // dirty the clock
  }
  auto again = pool.acquire(soc::ChipModel::kM1);
  // Same System object, recycled through a reset: boot state, new epoch.
  EXPECT_EQ(again.system().soc().clock().now(), 0u);
  EXPECT_GE(again.system().soc().clock().epoch(), 1u);
  EXPECT_EQ(pool.systems_built(), 1u);
}

TEST(MatrixBatch, SharedOperandsMatchTheSerialSuite) {
  harness::MatrixSet reference(64, /*fill=*/true, /*seed=*/42);
  MatrixBatch batch(64, /*fill=*/true, /*seed=*/42);
  auto out = batch.acquire_out();
  const harness::MatrixView view = out->view();
  EXPECT_EQ(view.n, 64u);
  EXPECT_EQ(view.memory_length, reference.memory_length());
  for (std::size_t i = 0; i < 64 * 64; ++i) {
    ASSERT_EQ(view.left[i], reference.left()[i]);
    ASSERT_EQ(view.right[i], reference.right()[i]);
    ASSERT_EQ(view.out[i], 0.0f);
  }
  view.out[7] = 1.0f;
  out.reset();  // recycle: buffer is re-zeroed for the next job
  auto out2 = batch.acquire_out();
  EXPECT_EQ(out2->view().out[7], 0.0f);
  EXPECT_EQ(batch.out_buffers_built(), 1u);
}

// --------------------------------------------------------------- campaign --

bool same_measurement(const harness::GemmMeasurement& a,
                      const harness::GemmMeasurement& b) {
  return a.chip == b.chip && a.impl == b.impl && a.n == b.n &&
         a.time_ns.values() == b.time_ns.values() &&
         a.best_gflops == b.best_gflops && a.mean_gflops == b.mean_gflops &&
         a.power_mw == b.power_mw && a.cpu_power_mw == b.cpu_power_mw &&
         a.gpu_power_mw == b.gpu_power_mw &&
         a.gflops_per_watt == b.gflops_per_watt &&
         a.functional == b.functional && a.verified == b.verified &&
         a.max_error == b.max_error;
}

void expect_same_measurement_sets(std::vector<harness::GemmMeasurement> a,
                                  std::vector<harness::GemmMeasurement> b) {
  ASSERT_EQ(a.size(), b.size());
  const auto canonical = [](const harness::GemmMeasurement& x,
                            const harness::GemmMeasurement& y) {
    return std::tuple(x.chip, x.n, x.impl) < std::tuple(y.chip, y.n, y.impl);
  };
  std::sort(a.begin(), a.end(), canonical);
  std::sort(b.begin(), b.end(), canonical);
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_TRUE(same_measurement(a[i], b[i]))
        << "mismatch at " << soc::to_string(a[i].chip) << " "
        << soc::to_string(a[i].impl) << " n=" << a[i].n;
  }
}

/// The pre-orchestrator serial loop, kept verbatim as the equivalence
/// reference: one System per chip, matrices allocated per size and shared
/// across implementations, measure() in sweep order.
std::vector<harness::GemmMeasurement> legacy_serial_sweep(
    const std::vector<soc::ChipModel>& chips,
    const std::vector<soc::GemmImpl>& impls,
    const std::vector<std::size_t>& sizes,
    const harness::GemmExperiment::Options& opts) {
  std::vector<harness::GemmMeasurement> results;
  for (const auto chip : chips) {
    core::System system(chip);
    harness::GemmExperiment experiment(system.gemm_context(), opts);
    for (const std::size_t n : sizes) {
      bool any_functional = false;
      for (const auto impl : impls) {
        any_functional |= !harness::paper_skips(impl, n) &&
                          harness::functional_at(opts, impl, n);
      }
      harness::MatrixSet matrices(n, any_functional, opts.matrix_seed);
      for (const auto impl_kind : impls) {
        if (harness::paper_skips(impl_kind, n)) {
          continue;
        }
        auto impl = gemm::create_gemm(impl_kind, system.gemm_context());
        matrices.clear_out();
        results.push_back(experiment.measure(*impl, matrices));
      }
    }
  }
  return results;
}

TEST(Campaign, ExpansionBuildsVerifyEdgesAndHonorsSkips) {
  harness::GemmExperiment::Options opts;  // defaults: functional small sizes
  Campaign campaign;
  campaign.chips({soc::ChipModel::kM1})
      .impls({soc::GemmImpl::kCpuSingle, soc::GemmImpl::kGpuMps})
      .sizes({64, 8192})
      .options(opts);

  JobQueue queue;
  campaign.expand(queue);
  const auto jobs = queue.jobs();
  EXPECT_EQ(jobs.size(), campaign.job_count());

  // CPU-Single skips 8192; n=64 is functional + verified for both impls.
  std::size_t measures = 0;
  std::size_t verifies = 0;
  for (const auto& job : jobs) {
    if (job.kind == JobKind::kGemmMeasure) {
      ++measures;
      EXPECT_FALSE(job.impl == soc::GemmImpl::kCpuSingle && job.n == 8192);
    } else if (job.kind == JobKind::kGemmVerify) {
      ++verifies;
      EXPECT_NE(job.parent, kInvalidJob);
    }
  }
  EXPECT_EQ(measures, 3u);
  EXPECT_EQ(verifies, 2u);

  // No verify job becomes ready before its measurement completed.
  std::vector<ExperimentJob> first_wave;
  while (auto job = queue.try_pop_ready()) {
    first_wave.push_back(*job);
  }
  EXPECT_EQ(first_wave.size(), measures);
  for (const auto& job : first_wave) {
    EXPECT_EQ(job.kind, JobKind::kGemmMeasure);
  }
}

TEST(Campaign, BatchedOperandsAreAllocatedOncePerSize) {
  harness::GemmExperiment::Options opts;
  opts.repetitions = 1;
  Campaign campaign;
  campaign.chips({soc::ChipModel::kM1})
      .sizes({64})
      .options(opts)
      .concurrency(1);
  const auto result = campaign.run();

  // All six implementations at n=64: 6 measure + 6 verify jobs, one shared
  // operand batch, and — serially — one recycled output buffer.
  EXPECT_EQ(result.gemm.size(), 6u);
  EXPECT_EQ(result.stats.jobs_total, 12u);
  EXPECT_EQ(result.stats.jobs_executed, 12u);
  EXPECT_EQ(result.stats.verifications, 6u);
  EXPECT_EQ(result.stats.batches_allocated, 1u);
  EXPECT_EQ(result.stats.out_buffers_allocated, 1u);
  for (const auto& m : result.gemm) {
    EXPECT_TRUE(m.functional);
    EXPECT_TRUE(m.verified) << soc::to_string(m.impl);
  }
}

TEST(Campaign, ConcurrentRunMatchesTheSerialSuite) {
  harness::GemmExperiment::Options opts;
  opts.repetitions = 2;
  const std::vector<soc::ChipModel> chips{soc::ChipModel::kM1};
  const std::vector<soc::GemmImpl> impls{soc::kAllGemmImpls.begin(),
                                         soc::kAllGemmImpls.end()};
  const std::vector<std::size_t> sizes{32, 64, 128};

  const auto serial = legacy_serial_sweep(chips, impls, sizes, opts);

  Campaign campaign;
  campaign.chips(chips).impls(impls).sizes(sizes).options(opts).concurrency(4);
  const auto result = campaign.run();

  expect_same_measurement_sets(serial, result.gemm);
}

TEST(Campaign, StreamAndPowerJobsProducePoints) {
  Campaign campaign;
  campaign.chips({soc::ChipModel::kM2})
      .impls({})
      .sizes({})
      .stream_sweep({1, 4}, /*repetitions=*/2)
      .power_idle(0.5)
      .concurrency(2);
  const auto result = campaign.run();
  EXPECT_TRUE(result.gemm.empty());
  ASSERT_EQ(result.stream.size(), 2u);
  ASSERT_EQ(result.power.size(), 1u);
  for (const auto& point : result.stream) {
    EXPECT_EQ(point.chip, soc::ChipModel::kM2);
    EXPECT_GT(point.run.best_overall_gbs(), 0.0);
  }
  EXPECT_GT(result.power.front().sample.combined_mw, 0.0);
}

// The ISSUE's acceptance sweep: >= 3 chips x 6 impls x the paper's sizes
// through the scheduler equals the serial suite, and a repeated campaign is
// served from the cache. Model-only options keep the host cost bounded the
// same way the figure benches do.
TEST(Campaign, AcceptanceThreeChipPaperSweepWithCache) {
  harness::GemmExperiment::Options opts;
  opts.repetitions = 2;
  for (auto& [impl, ceiling] : opts.functional_n_max) {
    ceiling = 0;  // model-only: the full grid reaches n=16384
  }
  const std::vector<soc::ChipModel> chips{
      soc::ChipModel::kM1, soc::ChipModel::kM2, soc::ChipModel::kM4};
  const std::vector<soc::GemmImpl> impls{soc::kAllGemmImpls.begin(),
                                         soc::kAllGemmImpls.end()};
  const auto& sizes = harness::paper_sizes();

  const auto serial = legacy_serial_sweep(chips, impls, sizes, opts);

  ResultCache cache;
  Campaign campaign;
  campaign.chips(chips).impls(impls).sizes(sizes).options(opts).cache(&cache)
      .concurrency(4);

  const auto first = campaign.run();
  expect_same_measurement_sets(serial, first.gemm);
  EXPECT_EQ(first.stats.cache_hits, 0u);

  const auto second = campaign.run();
  expect_same_measurement_sets(serial, second.gemm);
  // Every point was measured by the first run: >= 90% (here: all) of the
  // repeated campaign is serviced from the cache without touching a System.
  EXPECT_GE(second.stats.cache_hits,
            static_cast<std::size_t>(0.9 * second.gemm.size()));
  EXPECT_EQ(second.stats.cache_hits, second.gemm.size());
  EXPECT_EQ(second.stats.batches_allocated, 0u);
}

TEST(Campaign, CacheKeyedOnOptionsNotJustThePoint) {
  harness::GemmExperiment::Options opts;
  opts.repetitions = 1;
  ResultCache cache;
  Campaign campaign;
  campaign.chips({soc::ChipModel::kM3})
      .impls({soc::GemmImpl::kGpuMps})
      .sizes({64})
      .options(opts)
      .cache(&cache)
      .concurrency(1);
  const auto first = campaign.run();
  EXPECT_EQ(first.stats.cache_hits, 0u);

  // Same point, different seed: a different experiment, so no cache hit.
  auto reseeded = opts;
  reseeded.matrix_seed = 7;
  campaign.options(reseeded);
  const auto second = campaign.run();
  EXPECT_EQ(second.stats.cache_hits, 0u);
  EXPECT_EQ(cache.size(), 2u);
}

// ------------------------------------------- multi-kind campaigns + disk ---

/// A small campaign exercising every JobKind: GEMM measure + verify at a
/// functional size, CPU STREAM at two thread counts, GPU STREAM, a
/// precision study, an ANE dispatch, an FP64-emulation study, an SME GEMM,
/// and an idle power sample.
Campaign nine_kind_campaign() {
  harness::GemmExperiment::Options opts;
  opts.repetitions = 2;
  Campaign campaign;
  campaign.chips({soc::ChipModel::kM1, soc::ChipModel::kM3})
      .impls({soc::GemmImpl::kCpuSingle, soc::GemmImpl::kGpuMps})
      .sizes({64})
      .options(opts)
      .stream_sweep({1, 2}, /*repetitions=*/2, /*elements=*/1u << 10)
      .gpu_stream(/*repetitions=*/2, /*elements=*/1u << 10)
      .precision_study({32}, /*seed=*/5)
      .ane_inference({64})
      .fp64_emulation({24}, /*seed=*/11)
      .sme_gemm({48}, /*seed=*/13)
      .power_idle(0.25)
      .concurrency(4);
  return campaign;
}

TEST(Campaign, SchedulesEveryJobKindAndProducesTypedRecords) {
  Campaign campaign = nine_kind_campaign();

  // The expansion covers all nine kinds.
  JobQueue queue;
  campaign.expand(queue);
  std::map<JobKind, std::size_t> kinds;
  for (const auto& job : queue.jobs()) {
    ++kinds[job.kind];
  }
  EXPECT_EQ(kinds.size(), kJobKindCount);
  EXPECT_EQ(queue.jobs().size(), campaign.job_count());

  const auto result = campaign.run();
  EXPECT_EQ(result.gemm.size(), 4u);  // 2 chips x 2 impls
  ASSERT_EQ(result.stream.size(), 6u);  // 2 chips x (2 cpu + 1 gpu)
  ASSERT_EQ(result.precision.size(), 2u);
  ASSERT_EQ(result.ane.size(), 2u);
  ASSERT_EQ(result.power.size(), 2u);
  ASSERT_EQ(result.fp64emu.size(), 2u);
  ASSERT_EQ(result.sme.size(), 2u);

  for (const auto& r : result.fp64emu) {
    EXPECT_EQ(r.n, 24u);
    EXPECT_EQ(r.seed, 11u);
    // The double-single shader restores most of the FP64 accuracy the plain
    // FP32 path loses, at a modeled throughput cost.
    EXPECT_LT(r.emu_max_abs_error, r.fp32_max_abs_error / 100.0);
    EXPECT_GT(r.fp32_gflops, r.emulated_gflops);
    EXPECT_GT(r.emulated_gflops, 0.0);
  }
  for (const auto& r : result.sme) {
    EXPECT_EQ(r.n, 48u);
    EXPECT_EQ(r.seed, 13u);
    // SME FMOPA tiling must agree with the AMX reference bit-for-bit.
    EXPECT_TRUE(r.matches_amx);
    EXPECT_EQ(r.max_abs_diff, 0.0);
    EXPECT_GT(r.mean_output, 0.0);
    EXPECT_GT(r.modeled_gflops, 0.0);
  }

  std::size_t gpu_points = 0;
  for (const auto& point : result.stream) {
    EXPECT_GT(point.run.best_overall_gbs(), 0.0);
    if (point.gpu) {
      ++gpu_points;
      EXPECT_EQ(point.run.threads, 0);
    }
  }
  EXPECT_EQ(gpu_points, 2u);

  for (const auto& study : result.precision) {
    ASSERT_EQ(study.rows.size(), 4u);  // FP64, FP64-emu, FP32, FP16
    EXPECT_EQ(study.n, 32u);
    EXPECT_EQ(study.seed, 5u);
    EXPECT_GT(study.rows.back().modeled_gflops, 0.0);
  }

  for (const auto& r : result.ane) {
    // 64 is ANE-compatible (multiple of 16), so the plan keeps it on-engine;
    // uniform [0,1) operands make the expected mean element ~k/4.
    EXPECT_EQ(r.target, ane::DispatchTarget::kNeuralEngine);
    EXPECT_NEAR(r.mean_output, 16.0, 1.0);
    EXPECT_GT(r.gflops, 0.0);
    EXPECT_GT(r.gflops_per_watt, 0.0);
  }
}

TEST(Campaign, AneIncompatibleShapeFallsBackToGpu) {
  Campaign campaign;
  campaign.chips({soc::ChipModel::kM2})
      .impls({})
      .sizes({})
      .ane_inference({40})  // not a multiple of 16
      .concurrency(1);
  const auto result = campaign.run();
  ASSERT_EQ(result.ane.size(), 1u);
  EXPECT_EQ(result.ane.front().target, ane::DispatchTarget::kGpu);
  EXPECT_NEAR(result.ane.front().mean_output, 10.0, 1.0);
}

// A campaign mixing all nine JobKinds runs twice in (simulated) separate
// processes — a cold in-memory cache warmed only from the disk store serves
// every repeated point of the second run.
TEST(Campaign, NineKindCampaignRepeatsAcrossProcessesViaDiskStore) {
  const std::string path = temp_store("nine_kinds");

  Campaign campaign = nine_kind_campaign();
  CampaignResult first;
  {
    ResultCache cache;  // process 1
    cache.persist_to(path);
    campaign.cache(&cache);
    first = campaign.run();
    EXPECT_EQ(first.stats.cache_hits, 0u);
  }

  ResultCache cold;  // process 2: cold in-memory cache
  EXPECT_GT(cold.load(path), 0u);
  EXPECT_EQ(cold.stats().hits, 0u);
  campaign.cache(&cold);
  const auto second = campaign.run();

  // Every cacheable job (all but the verifications) is served from disk.
  EXPECT_EQ(second.stats.cache_hits,
            first.stats.jobs_executed - first.stats.verifications);
  EXPECT_GT(second.stats.cache_hits, 0u);
  EXPECT_EQ(second.stats.jobs_executed, 0u);
  EXPECT_EQ(second.stats.batches_allocated, 0u);
  EXPECT_EQ(second.stats.systems_built, 0u);

  // And the records are bit-identical to the first process's.
  EXPECT_EQ(first.gemm, second.gemm);
  EXPECT_EQ(first.stream, second.stream);
  EXPECT_EQ(first.precision, second.precision);
  EXPECT_EQ(first.ane, second.ane);
  EXPECT_EQ(first.power, second.power);
  EXPECT_EQ(first.fp64emu, second.fp64emu);
  EXPECT_EQ(first.sme, second.sme);
  std::remove(path.c_str());
}

// --------------------------------------------------- compaction + merging --

TEST(ResultCachePersistence, ManualCompactRewritesTheStoreToTheLiveSet) {
  const std::string path = temp_store("manual_compact");
  ResultCache cache;
  cache.persist_to(path);
  const auto entries = sample_entries();
  const auto& gemm_entry = entries.at("gemm");
  for (int i = 0; i < 5; ++i) {
    cache.insert(gemm_entry.first, gemm_entry.second);  // 5 appended lines
  }
  EXPECT_EQ(cache.store_entries(), 5u);
  EXPECT_EQ(cache.compact(), 1u);
  EXPECT_EQ(cache.store_entries(), 1u);
  EXPECT_EQ(cache.stats().compactions, 1u);
  ResultCache cold;
  EXPECT_EQ(cold.load(path), 1u);
  std::remove(path.c_str());
}

TEST(ResultCachePersistence, DuplicateHeavyWriteThroughAutoCompacts) {
  const std::string path = temp_store("auto_compact");
  ResultCache cache;
  cache.persist_to(path);
  // Tight policy so the test stays small: compact as soon as fewer than
  // half of >= 8 store lines are live.
  cache.set_compaction_policy(/*min_live_ratio=*/0.5, /*min_entries=*/8);
  const auto entries = sample_entries();
  const auto& gemm_entry = entries.at("gemm");
  const auto& power_entry = entries.at("power");
  cache.insert(power_entry.first, power_entry.second);
  for (int i = 0; i < 12; ++i) {
    cache.insert(gemm_entry.first, gemm_entry.second);
  }
  // 13 appends against 2 live entries: the policy must have fired, keeping
  // the store well below the 13 lines an uncompacted log would hold.
  EXPECT_GE(cache.stats().compactions, 1u);
  EXPECT_LE(cache.store_entries(), 8u);
  // The store still reconstructs exactly the live set.
  ResultCache cold;
  EXPECT_EQ(cold.load(path), cache.store_entries());
  EXPECT_EQ(cold.size(), 2u);
  EXPECT_TRUE(cold.contains(gemm_entry.first));
  EXPECT_TRUE(cold.contains(power_entry.first));
  std::remove(path.c_str());
}

TEST(ResultCachePersistence, CompactWithoutAStoreThrows) {
  ResultCache cache;
  EXPECT_THROW(cache.compact(), util::InvalidArgument);
}

TEST(ResultCachePersistence, AutoCompactionSuspendsOnceAnEntryIsEvicted) {
  const std::string path = temp_store("evicted_no_compact");
  const auto entries = sample_entries();
  ResultCache cache(/*capacity=*/2);  // 8 distinct sample keys: evictions
  cache.persist_to(path);
  cache.set_compaction_policy(/*min_live_ratio=*/0.9, /*min_entries=*/2);
  for (const auto& [name, entry] : entries) {
    cache.insert(entry.first, entry.second);
  }
  // Evicted entries live only in the append log now; a rewrite would
  // delete them, so the ratio policy must not have fired.
  EXPECT_EQ(cache.stats().compactions, 0u);
  EXPECT_EQ(cache.store_entries(), entries.size());
  ResultCache cold;
  EXPECT_EQ(cold.load(path), entries.size());
  EXPECT_EQ(cold.size(), entries.size());
  std::remove(path.c_str());
}

TEST(ResultCachePersistence, AutoCompactionSparesAStoreThatWasNeverLoaded) {
  const std::string path = temp_store("foreign_no_compact");
  const auto entries = sample_entries();
  {
    ResultCache writer;
    writer.persist_to(path);
    for (const auto& [name, entry] : entries) {
      writer.insert(entry.first, entry.second);
    }
  }
  // A restarted process attaches write-through WITHOUT load(): the store
  // holds entries this cache never saw, so duplicate-heavy appends must
  // not trigger a rewrite (it would delete them all).
  ResultCache restarted;
  restarted.persist_to(path);
  restarted.set_compaction_policy(/*min_live_ratio=*/0.5, /*min_entries=*/2);
  const auto& gemm_entry = entries.at("gemm");
  for (int i = 0; i < 12; ++i) {
    restarted.insert(gemm_entry.first, gemm_entry.second);
  }
  EXPECT_EQ(restarted.stats().compactions, 0u);
  ResultCache cold;
  EXPECT_EQ(cold.load(path), entries.size() + 12);  // every line survived
  EXPECT_EQ(cold.size(), entries.size());           // nothing was lost
  // load()-then-persist_to() re-arms the policy: the retained set covers
  // the store again, so the same duplicate pressure now compacts.
  ResultCache warmed;
  warmed.load(path);
  EXPECT_EQ(warmed.size(), entries.size());
  warmed.persist_to(path);
  warmed.set_compaction_policy(/*min_live_ratio=*/0.5, /*min_entries=*/2);
  for (int i = 0; i < 12; ++i) {
    warmed.insert(gemm_entry.first, gemm_entry.second);
  }
  EXPECT_GE(warmed.stats().compactions, 1u);
  ResultCache after;
  after.load(path);
  EXPECT_EQ(after.size(), entries.size());  // compaction was lossless
  std::remove(path.c_str());
}

TEST(ResultCachePersistence, MergeStorePropagatesToTheWriteThroughStore) {
  const std::string shard_path = temp_store("merge_shard");
  const std::string service_path = temp_store("merge_service");
  const auto entries = sample_entries();
  {
    ResultCache shard;  // a worker's independent store
    shard.persist_to(shard_path);
    for (const auto& [name, entry] : entries) {
      shard.insert(entry.first, entry.second);
    }
  }
  {
    ResultCache service;  // the service's persistent warm cache
    service.persist_to(service_path);
    EXPECT_EQ(service.merge_store(shard_path), entries.size());
    EXPECT_EQ(service.size(), entries.size());
  }
  // Unlike load(), the merge landed in the service's own store.
  ResultCache cold;
  EXPECT_EQ(cold.load(service_path), entries.size());
  std::remove(shard_path.c_str());
  std::remove(service_path.c_str());
}

// The wire twin of the disk store: serialize_store() must be byte-for-byte
// what save() writes — the shared framing constants and the single
// store_digest() definition are what keep the disk and socket codecs from
// drifting.
TEST(ResultCachePersistence, SerializeStoreMatchesSaveByteForByte) {
  ResultCache cache;
  for (std::size_t i = 0; i < 5; ++i) {
    cache.insert(gemm_key(soc::ChipModel::kM1, soc::GemmImpl::kCpuSingle,
                          32 + i, /*options_fp=*/9),
                 measurement_stub(32 + i));
  }
  const std::string path = temp_store("serialize_twin");
  EXPECT_EQ(cache.save(path), 5u);
  std::ifstream in(path, std::ios::binary);
  ASSERT_TRUE(in);
  std::ostringstream file_bytes;
  file_bytes << in.rdbuf();
  EXPECT_EQ(cache.serialize_store(), file_bytes.str());
  std::remove(path.c_str());
}

// merge_buffer() is merge_store() minus the filesystem: same entries, same
// stats, same write-through propagation — asserted byte-for-byte on the
// receiving caches' own stores.
TEST(ResultCachePersistence, MergeBufferMatchesMergeStore) {
  ResultCache shard;
  for (std::size_t i = 0; i < 6; ++i) {
    shard.insert(gemm_key(soc::kAllChipModels[i % 4],
                          soc::GemmImpl::kGpuMps, 64 + i, /*options_fp=*/3),
                 measurement_stub(64 + i));
  }
  const std::string shard_path = temp_store("merge_src");
  EXPECT_EQ(shard.save(shard_path), 6u);
  const std::string buffer = shard.serialize_store();

  const std::string via_store_path = temp_store("merge_via_store");
  const std::string via_buffer_path = temp_store("merge_via_buffer");
  ResultCache via_store;
  via_store.persist_to(via_store_path);
  EXPECT_EQ(via_store.merge_store(shard_path), 6u);
  ResultCache via_buffer;
  via_buffer.persist_to(via_buffer_path);
  EXPECT_EQ(via_buffer.merge_buffer(buffer), 6u);

  EXPECT_EQ(via_store.stats().loaded, via_buffer.stats().loaded);
  EXPECT_EQ(via_buffer.stats().load_rejected, 0u);
  const auto bits = [](ResultCache& cache) {
    std::map<std::uint64_t, std::string> out;
    for (const auto& [key, record] : cache.entries()) {
      out[key.fingerprint()] = serialize_record(record);
    }
    return out;
  };
  EXPECT_EQ(bits(via_store), bits(via_buffer));
  // Both merges propagated identically into their own write-through stores.
  const auto file_bytes = [](const std::string& path) {
    std::ifstream in(path, std::ios::binary);
    std::ostringstream out;
    out << in.rdbuf();
    return out.str();
  };
  EXPECT_EQ(file_bytes(via_store_path), file_bytes(via_buffer_path));
  std::remove(shard_path.c_str());
  std::remove(via_store_path.c_str());
  std::remove(via_buffer_path.c_str());
}

TEST(ResultCachePersistence, MergeBufferRejectsCorruptionLikeTheDiskPath) {
  ResultCache source;
  for (std::size_t i = 0; i < 4; ++i) {
    source.insert(gemm_key(soc::ChipModel::kM3, soc::GemmImpl::kCpuOmp,
                           128 + i, /*options_fp=*/1),
                  measurement_stub(128 + i));
  }
  std::string buffer = source.serialize_store();

  // One mangled entry line is skipped and counted; the rest still merges.
  const std::size_t first_entry =
      buffer.find(kStoreEntryPrefix, buffer.find('\n') + 1);
  ASSERT_NE(first_entry, std::string::npos);
  buffer[first_entry] = 'x';
  ResultCache partial;
  EXPECT_EQ(partial.merge_buffer(buffer), 3u);
  EXPECT_EQ(partial.stats().load_rejected, 1u);

  // A foreign version header rejects the whole buffer.
  ResultCache rejecting;
  EXPECT_EQ(rejecting.merge_buffer("ao-result-cache v999\nentry junk\n"), 0u);
  EXPECT_EQ(rejecting.stats().load_rejected, 1u);
  EXPECT_EQ(rejecting.size(), 0u);

  // And so does an empty buffer (no header at all).
  ResultCache empty;
  EXPECT_EQ(empty.merge_buffer(""), 0u);
}

// The multi-tenant campaign service shares one write-through cache between
// concurrently executing schedulers: hammer lookup/insert from many threads
// and require the surviving store to be bit-identical to a serial build of
// the same points (serialize_record writes hex bit patterns, so string
// equality IS bit equality).
TEST(ResultCacheConcurrency, ConcurrentInsertLookupMatchesSerialBitForBit) {
  constexpr std::size_t kThreads = 8;
  constexpr std::size_t kPerThread = 64;

  const auto key_for = [](std::size_t thread, std::size_t i) {
    // Distinct (impl, n) per point; threads interleave chips so neighbors
    // collide on the same cache shard-free mutex from all sides.
    return gemm_key(soc::kAllChipModels[thread % 4],
                    soc::kAllGemmImpls[i % 6], 8 + thread * kPerThread + i,
                    /*options_fp=*/7);
  };

  const std::string serial_path = temp_store("concurrent_serial");
  {
    ResultCache serial(kThreads * kPerThread);
    serial.persist_to(serial_path);
    for (std::size_t t = 0; t < kThreads; ++t) {
      for (std::size_t i = 0; i < kPerThread; ++i) {
        serial.insert(key_for(t, i), measurement_stub(8 + t * kPerThread + i));
      }
    }
  }

  const std::string concurrent_path = temp_store("concurrent_threads");
  {
    ResultCache cache(kThreads * kPerThread);
    cache.persist_to(concurrent_path);
    std::vector<std::thread> threads;
    for (std::size_t t = 0; t < kThreads; ++t) {
      threads.emplace_back([&cache, &key_for, t] {
        for (std::size_t i = 0; i < kPerThread; ++i) {
          cache.insert(key_for(t, i), measurement_stub(8 + t * kPerThread + i));
          // Interleave lookups of our own and of a neighbor's keys: hits,
          // misses and LRU splices race the other threads' inserts.
          ASSERT_TRUE(cache.lookup(key_for(t, i)).has_value());
          cache.lookup(key_for((t + 1) % kThreads, i));
        }
      });
    }
    for (auto& thread : threads) {
      thread.join();
    }
    EXPECT_EQ(cache.size(), kThreads * kPerThread);
  }

  // Both stores reload into identical key → record-bits maps.
  const auto snapshot = [](const std::string& path) {
    ResultCache cold(kThreads * kPerThread);
    EXPECT_EQ(cold.load(path), kThreads * kPerThread);
    EXPECT_EQ(cold.stats().load_rejected, 0u);
    std::map<std::uint64_t, std::string> out;
    for (const auto& [key, record] : cold.entries()) {
      out[key.fingerprint()] = serialize_record(record);
    }
    return out;
  };
  EXPECT_EQ(snapshot(concurrent_path), snapshot(serial_path));
  std::remove(serial_path.c_str());
  std::remove(concurrent_path.c_str());
}

// Auto-compaction racing concurrent writers must never lose a retained
// entry: every key inserted is still loadable after the dust settles.
TEST(ResultCacheConcurrency, AutoCompactionUnderConcurrencyLosesNothing) {
  const std::string path = temp_store("concurrent_compact");
  constexpr std::size_t kThreads = 4;
  constexpr std::size_t kKeys = 32;
  {
    ResultCache cache(kKeys);
    cache.persist_to(path);
    // Aggressive policy: re-inserts pile up duplicates fast and trip the
    // live/stored ratio repeatedly while other threads are appending.
    cache.set_compaction_policy(0.5, 16);
    std::vector<std::thread> threads;
    for (std::size_t t = 0; t < kThreads; ++t) {
      threads.emplace_back([&cache, t] {
        for (std::size_t round = 0; round < 8; ++round) {
          for (std::size_t i = 0; i < kKeys; ++i) {
            // All threads write the same keyspace with identical records —
            // the determinism contract concurrent campaigns rely on.
            cache.insert(gemm_key(soc::kAllChipModels[i % 4],
                                  soc::kAllGemmImpls[i % 6], 16 + i,
                                  /*options_fp=*/3),
                         measurement_stub(16 + i));
          }
          (void)t;
        }
      });
    }
    for (auto& thread : threads) {
      thread.join();
    }
    EXPECT_GT(cache.stats().compactions, 0u);
  }
  ResultCache cold(kKeys);
  // Appends after the final compaction may leave duplicate lines; what
  // matters is that every one of the 32 retained keys survived.
  EXPECT_GE(cold.load(path), kKeys);
  EXPECT_EQ(cold.size(), kKeys);
  EXPECT_EQ(cold.stats().load_rejected, 0u);
  std::remove(path.c_str());
}

// -------------------------------------------------------------- plan cache --

Campaign plan_cache_campaign() {
  harness::GemmExperiment::Options opts;
  opts.repetitions = 1;
  Campaign campaign;
  campaign.chips({soc::ChipModel::kM1})
      .impls({soc::GemmImpl::kCpuSingle, soc::GemmImpl::kGpuMps})
      .sizes({64, 128})
      .options(opts);
  return campaign;
}

TEST(PlanCache, CompiledExpansionRebuildsTheExactJobGraph) {
  const Campaign campaign = plan_cache_campaign();
  const CompiledCampaign compiled = compile_campaign(campaign);
  EXPECT_EQ(compiled.groups.size(), campaign.groups().size());
  EXPECT_EQ(compiled.job_count, campaign.job_count());

  // A queue rebuilt from the compilation is indistinguishable — job for
  // job, id for id — from one the campaign expanded directly: a cache-hit
  // run must be bit-identical to a cold run.
  JobQueue direct;
  campaign.expand(direct);
  JobQueue rebuilt;
  push_groups(rebuilt, compiled.groups);
  const auto expected = direct.jobs();
  const auto actual = rebuilt.jobs();
  ASSERT_EQ(actual.size(), expected.size());
  for (std::size_t i = 0; i < expected.size(); ++i) {
    EXPECT_EQ(actual[i].id, expected[i].id) << "job " << i;
    EXPECT_EQ(actual[i].kind, expected[i].kind) << "job " << i;
    EXPECT_EQ(actual[i].priority, expected[i].priority) << "job " << i;
    EXPECT_EQ(actual[i].chip, expected[i].chip) << "job " << i;
    EXPECT_EQ(actual[i].impl, expected[i].impl) << "job " << i;
    EXPECT_EQ(actual[i].n, expected[i].n) << "job " << i;
    EXPECT_EQ(actual[i].parent, expected[i].parent) << "job " << i;
    EXPECT_EQ(actual[i].expects_verify, expected[i].expects_verify)
        << "job " << i;
  }

  // The subset form addresses the same group indices a full expansion
  // would — the shard-task path reuses the compilation too.
  JobQueue subset_direct;
  campaign.expand_subset(subset_direct, {0, 2});
  JobQueue subset_rebuilt;
  push_group_subset(subset_rebuilt, compiled.groups, {0, 2});
  EXPECT_EQ(subset_rebuilt.jobs().size(), subset_direct.jobs().size());
}

TEST(PlanCache, CheckoutSharesOneCompilationPerKey) {
  PlanCache cache(4);
  int compiles = 0;
  const auto compile = [&] {
    ++compiles;
    return compile_campaign(plan_cache_campaign());
  };
  const auto first = cache.checkout("key-a", compile);
  const auto second = cache.checkout("key-a", compile);
  EXPECT_EQ(first.get(), second.get());
  EXPECT_EQ(compiles, 1);
  const auto third = cache.checkout("key-b", compile);
  EXPECT_NE(third.get(), first.get());
  EXPECT_EQ(compiles, 2);

  const PlanCache::Stats stats = cache.stats();
  EXPECT_EQ(stats.hits, 1u);
  EXPECT_EQ(stats.misses, 2u);
  EXPECT_EQ(stats.evictions, 0u);
  EXPECT_EQ(stats.size, 2u);
}

TEST(PlanCache, LruBoundEvictsTheColdestEntryOnly) {
  PlanCache cache(2);
  int compiles = 0;
  const auto compile = [&] {
    ++compiles;
    CompiledCampaign compiled;
    compiled.job_count = static_cast<std::size_t>(compiles);
    return compiled;
  };
  const auto held = cache.checkout("k0", compile);
  cache.checkout("k1", compile);
  cache.checkout("k2", compile);  // evicts k0, the least recently used
  EXPECT_EQ(cache.size(), 2u);
  EXPECT_EQ(cache.stats().evictions, 1u);
  // Holders of an evicted compilation keep a valid shared snapshot.
  EXPECT_EQ(held->job_count, 1u);

  // k1 is still resident (a hit); k0 must recompile.
  cache.checkout("k1", compile);
  EXPECT_EQ(compiles, 3);
  cache.checkout("k0", compile);
  EXPECT_EQ(compiles, 4);
  EXPECT_EQ(cache.stats().evictions, 2u);
  EXPECT_EQ(cache.size(), 2u);
  // Capacity is clamped to at least one retained entry.
  EXPECT_GE(PlanCache(0).capacity(), 1u);
}

TEST(PlanCache, ShardPartitionMemoizesPerShardCountAndNeedsResidency) {
  PlanCache cache(2);
  int plans = 0;
  const auto plan = [&] {
    ++plans;
    return std::vector<std::vector<std::size_t>>{{0, 2}, {1}};
  };
  // A key that was never checked out has nothing to remember the partition
  // on: the memo must not resurrect (or invent) cache entries.
  EXPECT_EQ(cache.shard_partition("ghost", 2, plan), nullptr);
  EXPECT_EQ(plans, 0);

  cache.checkout("k", [] { return CompiledCampaign{}; });
  const auto first = cache.shard_partition("k", 2, plan);
  ASSERT_NE(first, nullptr);
  EXPECT_EQ(plans, 1);
  EXPECT_EQ(first->size(), 2u);
  const auto second = cache.shard_partition("k", 2, plan);
  EXPECT_EQ(second.get(), first.get());
  EXPECT_EQ(plans, 1);
  // Each shard count is its own memo — a resharded rerun replans once.
  const auto three = cache.shard_partition("k", 3, plan);
  ASSERT_NE(three, nullptr);
  EXPECT_EQ(plans, 2);

  cache.clear();
  EXPECT_EQ(cache.size(), 0u);
  EXPECT_EQ(cache.shard_partition("k", 2, plan), nullptr);
}

// serialize_store() promises one allocation: the reserve driven by
// serialize_size_hint() must bound the final byte count for stores holding
// every record kind (the precision kind carries variable-length strings —
// the hint folds them in).
TEST(ResultCachePersistence, SerializeSizeHintBoundsTheSingleAllocation) {
  ResultCache cache;
  EXPECT_EQ(cache.serialize_size_hint(), cache.serialize_store().size());

  for (const auto& [name, entry] : sample_entries()) {
    cache.insert(entry.first, entry.second);
  }
  const std::size_t hint = cache.serialize_size_hint();
  const std::string store = cache.serialize_store();
  EXPECT_GE(hint, store.size());
  // The hint is a bound, not a fantasy: within a small factor of the real
  // store, so the reserve never balloons.
  EXPECT_LE(hint, 4 * store.size());
  // Capacity probe: the serialized string never outgrew its reserve — its
  // capacity matches what a single reserve(hint) yields.
  std::string probe;
  probe.reserve(hint);
  EXPECT_LE(store.capacity(), probe.capacity());
}

}  // namespace
}  // namespace ao::orchestrator
