#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <tuple>
#include <vector>

#include "core/system.hpp"
#include "harness/experiment.hpp"
#include "harness/matrix_workload.hpp"
#include "orchestrator/campaign.hpp"
#include "orchestrator/job.hpp"
#include "orchestrator/result_cache.hpp"
#include "orchestrator/scheduler.hpp"
#include "util/error.hpp"

namespace ao::orchestrator {
namespace {

// ------------------------------------------------------------- job queue ---

ExperimentJob gemm_job(std::size_t n, int priority = 0) {
  ExperimentJob job;
  job.kind = JobKind::kGemmMeasure;
  job.n = n;
  job.priority = priority;
  return job;
}

TEST(JobQueue, DependentsWaitForTheirMeasurement) {
  JobQueue queue;
  const JobId a = queue.push(gemm_job(64));
  ExperimentJob verify;
  verify.kind = JobKind::kGemmVerify;
  verify.n = 64;
  verify.parent = a;
  const JobId b = queue.push(verify, {a});

  auto first = queue.try_pop_ready();
  ASSERT_TRUE(first.has_value());
  EXPECT_EQ(first->id, a);
  // The verify job is pushed but not ready until its measurement finishes.
  EXPECT_FALSE(queue.try_pop_ready().has_value());
  queue.mark_done(a);
  auto second = queue.try_pop_ready();
  ASSERT_TRUE(second.has_value());
  EXPECT_EQ(second->id, b);
  queue.mark_done(b);
  EXPECT_TRUE(queue.all_done());
}

TEST(JobQueue, PriorityOrdersReadyJobs) {
  JobQueue queue;
  const JobId small = queue.push(gemm_job(32, /*priority=*/32));
  const JobId large = queue.push(gemm_job(4096, /*priority=*/4096));
  const JobId mid = queue.push(gemm_job(256, /*priority=*/256));

  EXPECT_EQ(queue.try_pop_ready()->id, large);
  EXPECT_EQ(queue.try_pop_ready()->id, mid);
  EXPECT_EQ(queue.try_pop_ready()->id, small);
  // Equal priority falls back to submission order.
  JobQueue tie;
  const JobId first = tie.push(gemm_job(64, 7));
  tie.push(gemm_job(64, 7));
  EXPECT_EQ(tie.try_pop_ready()->id, first);
}

TEST(JobQueue, UnknownDependencyThrows) {
  JobQueue queue;
  EXPECT_THROW(queue.push(gemm_job(64), {JobId{999}}), util::InvalidArgument);
}

TEST(JobQueue, DoneDependencyCountsAsSatisfied) {
  JobQueue queue;
  const JobId a = queue.push(gemm_job(64));
  queue.try_pop_ready();
  queue.mark_done(a);
  queue.push(gemm_job(128), {a});
  EXPECT_TRUE(queue.try_pop_ready().has_value());
}

TEST(JobQueue, PopReadyReturnsNulloptWhenDrained) {
  JobQueue queue;
  const JobId a = queue.push(gemm_job(64));
  EXPECT_EQ(queue.pop_ready()->id, a);
  queue.mark_done(a);
  EXPECT_FALSE(queue.pop_ready().has_value());
  EXPECT_FALSE(JobQueue{}.pop_ready().has_value());
}

// ----------------------------------------------------------- result cache --

harness::GemmMeasurement measurement_stub(std::size_t n) {
  harness::GemmMeasurement m;
  m.n = n;
  m.best_gflops = static_cast<double>(n);
  return m;
}

TEST(ResultCache, HitMissAndLruEviction) {
  ResultCache cache(2);
  const std::uint64_t fp = 1;
  const CacheKey k1{soc::ChipModel::kM1, soc::GemmImpl::kGpuMps, 64, fp};
  const CacheKey k2{soc::ChipModel::kM1, soc::GemmImpl::kGpuMps, 128, fp};
  const CacheKey k3{soc::ChipModel::kM2, soc::GemmImpl::kGpuMps, 64, fp};

  EXPECT_FALSE(cache.lookup(k1).has_value());
  cache.insert(k1, measurement_stub(64));
  cache.insert(k2, measurement_stub(128));
  EXPECT_EQ(cache.size(), 2u);

  // Touch k1 so k2 becomes the least recently used, then overflow.
  EXPECT_TRUE(cache.lookup(k1).has_value());
  cache.insert(k3, measurement_stub(64));
  EXPECT_EQ(cache.size(), 2u);
  EXPECT_TRUE(cache.contains(k1));
  EXPECT_FALSE(cache.contains(k2));  // evicted
  EXPECT_TRUE(cache.contains(k3));

  const auto stats = cache.stats();
  EXPECT_EQ(stats.insertions, 3u);
  EXPECT_EQ(stats.evictions, 1u);
  EXPECT_EQ(stats.hits, 1u);
  EXPECT_EQ(stats.misses, 1u);
  EXPECT_EQ(cache.lookup(k1)->n, 64u);
}

TEST(ResultCache, OptionsFingerprintCoversMeasurementIdentity) {
  harness::GemmExperiment::Options base;
  const std::uint64_t fp = options_fingerprint(base);
  EXPECT_EQ(fp, options_fingerprint(base));  // stable

  auto seeded = base;
  seeded.matrix_seed = 43;
  EXPECT_NE(fp, options_fingerprint(seeded));

  auto reps = base;
  reps.repetitions = 7;
  EXPECT_NE(fp, options_fingerprint(reps));

  auto ceilings = base;
  ceilings.functional_n_max[soc::GemmImpl::kGpuMps] = 0;
  EXPECT_NE(fp, options_fingerprint(ceilings));

  auto power = base;
  power.use_powermetrics = false;
  EXPECT_NE(fp, options_fingerprint(power));
}

// ------------------------------------------------- system + batch leasing --

TEST(SystemPool, LeaseHandsOutBootStateAndRecycles) {
  SystemPool pool;
  {
    auto lease = pool.acquire(soc::ChipModel::kM1);
    EXPECT_EQ(lease.system().soc().clock().now(), 0u);
    EXPECT_EQ(lease.system().soc().clock().epoch(), lease.boot_epoch());
    lease.system().soc().idle(5e9);  // dirty the clock
  }
  auto again = pool.acquire(soc::ChipModel::kM1);
  // Same System object, recycled through a reset: boot state, new epoch.
  EXPECT_EQ(again.system().soc().clock().now(), 0u);
  EXPECT_GE(again.system().soc().clock().epoch(), 1u);
  EXPECT_EQ(pool.systems_built(), 1u);
}

TEST(MatrixBatch, SharedOperandsMatchTheSerialSuite) {
  harness::MatrixSet reference(64, /*fill=*/true, /*seed=*/42);
  MatrixBatch batch(64, /*fill=*/true, /*seed=*/42);
  auto out = batch.acquire_out();
  const harness::MatrixView view = out->view();
  EXPECT_EQ(view.n, 64u);
  EXPECT_EQ(view.memory_length, reference.memory_length());
  for (std::size_t i = 0; i < 64 * 64; ++i) {
    ASSERT_EQ(view.left[i], reference.left()[i]);
    ASSERT_EQ(view.right[i], reference.right()[i]);
    ASSERT_EQ(view.out[i], 0.0f);
  }
  view.out[7] = 1.0f;
  out.reset();  // recycle: buffer is re-zeroed for the next job
  auto out2 = batch.acquire_out();
  EXPECT_EQ(out2->view().out[7], 0.0f);
  EXPECT_EQ(batch.out_buffers_built(), 1u);
}

// --------------------------------------------------------------- campaign --

bool same_measurement(const harness::GemmMeasurement& a,
                      const harness::GemmMeasurement& b) {
  return a.chip == b.chip && a.impl == b.impl && a.n == b.n &&
         a.time_ns.values() == b.time_ns.values() &&
         a.best_gflops == b.best_gflops && a.mean_gflops == b.mean_gflops &&
         a.power_mw == b.power_mw && a.cpu_power_mw == b.cpu_power_mw &&
         a.gpu_power_mw == b.gpu_power_mw &&
         a.gflops_per_watt == b.gflops_per_watt &&
         a.functional == b.functional && a.verified == b.verified &&
         a.max_error == b.max_error;
}

void expect_same_measurement_sets(std::vector<harness::GemmMeasurement> a,
                                  std::vector<harness::GemmMeasurement> b) {
  ASSERT_EQ(a.size(), b.size());
  const auto canonical = [](const harness::GemmMeasurement& x,
                            const harness::GemmMeasurement& y) {
    return std::tuple(x.chip, x.n, x.impl) < std::tuple(y.chip, y.n, y.impl);
  };
  std::sort(a.begin(), a.end(), canonical);
  std::sort(b.begin(), b.end(), canonical);
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_TRUE(same_measurement(a[i], b[i]))
        << "mismatch at " << soc::to_string(a[i].chip) << " "
        << soc::to_string(a[i].impl) << " n=" << a[i].n;
  }
}

/// The pre-orchestrator serial loop, kept verbatim as the equivalence
/// reference: one System per chip, matrices allocated per size and shared
/// across implementations, measure() in sweep order.
std::vector<harness::GemmMeasurement> legacy_serial_sweep(
    const std::vector<soc::ChipModel>& chips,
    const std::vector<soc::GemmImpl>& impls,
    const std::vector<std::size_t>& sizes,
    const harness::GemmExperiment::Options& opts) {
  std::vector<harness::GemmMeasurement> results;
  for (const auto chip : chips) {
    core::System system(chip);
    harness::GemmExperiment experiment(system.gemm_context(), opts);
    for (const std::size_t n : sizes) {
      bool any_functional = false;
      for (const auto impl : impls) {
        any_functional |= !harness::paper_skips(impl, n) &&
                          harness::functional_at(opts, impl, n);
      }
      harness::MatrixSet matrices(n, any_functional, opts.matrix_seed);
      for (const auto impl_kind : impls) {
        if (harness::paper_skips(impl_kind, n)) {
          continue;
        }
        auto impl = gemm::create_gemm(impl_kind, system.gemm_context());
        matrices.clear_out();
        results.push_back(experiment.measure(*impl, matrices));
      }
    }
  }
  return results;
}

TEST(Campaign, ExpansionBuildsVerifyEdgesAndHonorsSkips) {
  harness::GemmExperiment::Options opts;  // defaults: functional small sizes
  Campaign campaign;
  campaign.chips({soc::ChipModel::kM1})
      .impls({soc::GemmImpl::kCpuSingle, soc::GemmImpl::kGpuMps})
      .sizes({64, 8192})
      .options(opts);

  JobQueue queue;
  campaign.expand(queue);
  const auto jobs = queue.jobs();
  EXPECT_EQ(jobs.size(), campaign.job_count());

  // CPU-Single skips 8192; n=64 is functional + verified for both impls.
  std::size_t measures = 0;
  std::size_t verifies = 0;
  for (const auto& job : jobs) {
    if (job.kind == JobKind::kGemmMeasure) {
      ++measures;
      EXPECT_FALSE(job.impl == soc::GemmImpl::kCpuSingle && job.n == 8192);
    } else if (job.kind == JobKind::kGemmVerify) {
      ++verifies;
      EXPECT_NE(job.parent, kInvalidJob);
    }
  }
  EXPECT_EQ(measures, 3u);
  EXPECT_EQ(verifies, 2u);

  // No verify job becomes ready before its measurement completed.
  std::vector<ExperimentJob> first_wave;
  while (auto job = queue.try_pop_ready()) {
    first_wave.push_back(*job);
  }
  EXPECT_EQ(first_wave.size(), measures);
  for (const auto& job : first_wave) {
    EXPECT_EQ(job.kind, JobKind::kGemmMeasure);
  }
}

TEST(Campaign, BatchedOperandsAreAllocatedOncePerSize) {
  harness::GemmExperiment::Options opts;
  opts.repetitions = 1;
  Campaign campaign;
  campaign.chips({soc::ChipModel::kM1})
      .sizes({64})
      .options(opts)
      .concurrency(1);
  const auto result = campaign.run();

  // All six implementations at n=64: 6 measure + 6 verify jobs, one shared
  // operand batch, and — serially — one recycled output buffer.
  EXPECT_EQ(result.gemm.size(), 6u);
  EXPECT_EQ(result.stats.jobs_total, 12u);
  EXPECT_EQ(result.stats.jobs_executed, 12u);
  EXPECT_EQ(result.stats.verifications, 6u);
  EXPECT_EQ(result.stats.batches_allocated, 1u);
  EXPECT_EQ(result.stats.out_buffers_allocated, 1u);
  for (const auto& m : result.gemm) {
    EXPECT_TRUE(m.functional);
    EXPECT_TRUE(m.verified) << soc::to_string(m.impl);
  }
}

TEST(Campaign, ConcurrentRunMatchesTheSerialSuite) {
  harness::GemmExperiment::Options opts;
  opts.repetitions = 2;
  const std::vector<soc::ChipModel> chips{soc::ChipModel::kM1};
  const std::vector<soc::GemmImpl> impls{soc::kAllGemmImpls.begin(),
                                         soc::kAllGemmImpls.end()};
  const std::vector<std::size_t> sizes{32, 64, 128};

  const auto serial = legacy_serial_sweep(chips, impls, sizes, opts);

  Campaign campaign;
  campaign.chips(chips).impls(impls).sizes(sizes).options(opts).concurrency(4);
  const auto result = campaign.run();

  expect_same_measurement_sets(serial, result.gemm);
}

TEST(Campaign, StreamAndPowerJobsProducePoints) {
  Campaign campaign;
  campaign.chips({soc::ChipModel::kM2})
      .impls({})
      .sizes({})
      .stream_sweep({1, 4}, /*repetitions=*/2)
      .power_idle(0.5)
      .concurrency(2);
  const auto result = campaign.run();
  EXPECT_TRUE(result.gemm.empty());
  ASSERT_EQ(result.stream.size(), 2u);
  ASSERT_EQ(result.power.size(), 1u);
  for (const auto& point : result.stream) {
    EXPECT_EQ(point.chip, soc::ChipModel::kM2);
    EXPECT_GT(point.run.best_overall_gbs(), 0.0);
  }
  EXPECT_GT(result.power.front().sample.combined_mw, 0.0);
}

// The ISSUE's acceptance sweep: >= 3 chips x 6 impls x the paper's sizes
// through the scheduler equals the serial suite, and a repeated campaign is
// served from the cache. Model-only options keep the host cost bounded the
// same way the figure benches do.
TEST(Campaign, AcceptanceThreeChipPaperSweepWithCache) {
  harness::GemmExperiment::Options opts;
  opts.repetitions = 2;
  for (auto& [impl, ceiling] : opts.functional_n_max) {
    ceiling = 0;  // model-only: the full grid reaches n=16384
  }
  const std::vector<soc::ChipModel> chips{
      soc::ChipModel::kM1, soc::ChipModel::kM2, soc::ChipModel::kM4};
  const std::vector<soc::GemmImpl> impls{soc::kAllGemmImpls.begin(),
                                         soc::kAllGemmImpls.end()};
  const auto& sizes = harness::paper_sizes();

  const auto serial = legacy_serial_sweep(chips, impls, sizes, opts);

  ResultCache cache;
  Campaign campaign;
  campaign.chips(chips).impls(impls).sizes(sizes).options(opts).cache(&cache)
      .concurrency(4);

  const auto first = campaign.run();
  expect_same_measurement_sets(serial, first.gemm);
  EXPECT_EQ(first.stats.cache_hits, 0u);

  const auto second = campaign.run();
  expect_same_measurement_sets(serial, second.gemm);
  // Every point was measured by the first run: >= 90% (here: all) of the
  // repeated campaign is serviced from the cache without touching a System.
  EXPECT_GE(second.stats.cache_hits,
            static_cast<std::size_t>(0.9 * second.gemm.size()));
  EXPECT_EQ(second.stats.cache_hits, second.gemm.size());
  EXPECT_EQ(second.stats.batches_allocated, 0u);
}

TEST(Campaign, CacheKeyedOnOptionsNotJustThePoint) {
  harness::GemmExperiment::Options opts;
  opts.repetitions = 1;
  ResultCache cache;
  Campaign campaign;
  campaign.chips({soc::ChipModel::kM3})
      .impls({soc::GemmImpl::kGpuMps})
      .sizes({64})
      .options(opts)
      .cache(&cache)
      .concurrency(1);
  const auto first = campaign.run();
  EXPECT_EQ(first.stats.cache_hits, 0u);

  // Same point, different seed: a different experiment, so no cache hit.
  auto reseeded = opts;
  reseeded.matrix_seed = 7;
  campaign.options(reseeded);
  const auto second = campaign.run();
  EXPECT_EQ(second.stats.cache_hits, 0u);
  EXPECT_EQ(cache.size(), 2u);
}

}  // namespace
}  // namespace ao::orchestrator
