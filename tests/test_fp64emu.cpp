#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "core/system.hpp"
#include "fp64emu/double_single.hpp"
#include "fp64emu/gemm_fp64_shader.hpp"
#include "metal/compute_command_encoder.hpp"
#include "util/rng.hpp"

namespace ao::fp64emu {
namespace {

// ------------------------------------------------ error-free transforms ----

TEST(DoubleSingle, TwoSumIsErrorFree) {
  // a + b = s + e exactly, even when the small addend is absorbed.
  const float a = 1.0f;
  const float b = 1e-8f;  // absorbed in FP32: a + b == a
  const DoubleSingle r = two_sum(a, b);
  EXPECT_EQ(r.hi, 1.0f);
  EXPECT_EQ(r.lo, 1e-8f);  // recovered exactly
  EXPECT_DOUBLE_EQ(static_cast<double>(r.hi) + r.lo,
                   static_cast<double>(a) + b);
}

TEST(DoubleSingle, TwoProdIsErrorFree) {
  // Choose factors whose product needs 48 bits: (2^12+1) * (2^12+3).
  const float a = 4097.0f;
  const float b = 4099.0f;
  const DoubleSingle r = two_prod(a, b);
  const double exact = static_cast<double>(a) * b;
  EXPECT_DOUBLE_EQ(static_cast<double>(r.hi) + r.lo, exact);
}

TEST(DoubleSingle, SplitRoundTrip) {
  for (const double v : {0.0, 1.0, -1.0, 3.141592653589793, 1e-7, 12345.6789}) {
    const DoubleSingle ds = DoubleSingle::from_double(v);
    // 49 bits of significand: relative error < 2^-48 for these magnitudes.
    EXPECT_NEAR(ds.to_double(), v, std::fabs(v) * 0x1.0p-45 + 1e-300);
  }
}

TEST(DoubleSingle, AddMulAccuracy) {
  util::Xoshiro256 rng(13);
  for (int i = 0; i < 2000; ++i) {
    const double x = rng.next_double();
    const double y = rng.next_double();
    const DoubleSingle dx = DoubleSingle::from_double(x);
    const DoubleSingle dy = DoubleSingle::from_double(y);
    EXPECT_NEAR(ds_add(dx, dy).to_double(), x + y, (x + y) * 0x1.0p-44);
    EXPECT_NEAR(ds_mul(dx, dy).to_double(), x * y,
                std::max(x * y, 1e-30) * 0x1.0p-42);
    EXPECT_NEAR(ds_sub(dx, dy).to_double(), x - y,
                std::max(std::fabs(x - y), 1.0) * 0x1.0p-42);
  }
}

TEST(DoubleSingle, LongSummationBeatsFp32ByOrders) {
  // Summing 1e6 values of ~1e-6: FP32 loses ~3 digits, ds keeps ~10.
  constexpr int kCount = 1'000'000;
  float f32 = 0.0f;
  DoubleSingle ds;
  double exact = 0.0;
  util::Xoshiro256 rng(17);
  for (int i = 0; i < kCount; ++i) {
    const float v = rng.next_float() * 1e-6f;
    f32 += v;
    ds = ds_add(ds, DoubleSingle::from_float(v));
    exact += v;
  }
  const double f32_err = std::fabs(f32 - exact);
  const double ds_err = std::fabs(ds.to_double() - exact);
  EXPECT_LT(ds_err, f32_err / 1e3);
}

TEST(DoubleSingle, FmaMatchesMulThenAdd) {
  const DoubleSingle a = DoubleSingle::from_double(1.0 / 3.0);
  const DoubleSingle b = DoubleSingle::from_double(3.0);
  const DoubleSingle c = DoubleSingle::from_double(-1.0);
  const double r = ds_fma(a, b, c).to_double();
  EXPECT_NEAR(r, 1.0 / 3.0 * 3.0 - 1.0, 1e-12);
}

// -------------------------------------------------- matrix split / join ----

TEST(MatrixSplit, RoundTripPreserves48Bits) {
  std::vector<double> src(256);
  util::fill_uniform(std::span<double>(src), 21);
  std::vector<float> hi(src.size());
  std::vector<float> lo(src.size());
  std::vector<double> back(src.size());
  split_matrix(src.data(), hi.data(), lo.data(), src.size());
  join_matrix(hi.data(), lo.data(), back.data(), src.size());
  for (std::size_t i = 0; i < src.size(); ++i) {
    ASSERT_NEAR(back[i], src[i], std::fabs(src[i]) * 0x1.0p-45);
  }
}

// ------------------------------------------------------- GPU shader --------

class Fp64ShaderTest : public ::testing::Test {
 protected:
  core::System system_{soc::ChipModel::kM3};

  /// Runs the emulated-FP64 GEMM shader and returns the FP64 result.
  std::vector<double> run(const std::vector<double>& a,
                          const std::vector<double>& b, std::uint32_t n) {
    auto& device = system_.device();
    const std::size_t bytes = static_cast<std::size_t>(n) * n * sizeof(float);
    auto make = [&](const double* src) {
      auto hi = device.new_buffer(bytes, mem::StorageMode::kShared);
      auto lo = device.new_buffer(bytes, mem::StorageMode::kShared);
      if (src != nullptr) {
        split_matrix(src, static_cast<float*>(hi->contents()),
                     static_cast<float*>(lo->contents()),
                     static_cast<std::size_t>(n) * n);
      }
      return std::pair{hi, lo};
    };
    auto [a_hi, a_lo] = make(a.data());
    auto [b_hi, b_lo] = make(b.data());
    auto [c_hi, c_lo] = make(nullptr);

    auto pipeline =
        device.new_compute_pipeline_state(make_gemm_fp64_emulated());
    auto queue = device.new_command_queue();
    auto cmd = queue->command_buffer();
    auto enc = cmd->compute_command_encoder();
    enc->set_compute_pipeline_state(pipeline);
    enc->set_buffer(a_hi.get(), 0, 0);
    enc->set_buffer(a_lo.get(), 0, 1);
    enc->set_buffer(b_hi.get(), 0, 2);
    enc->set_buffer(b_lo.get(), 0, 3);
    enc->set_buffer(c_hi.get(), 0, 4);
    enc->set_buffer(c_lo.get(), 0, 5);
    enc->set_value<std::uint32_t>(n, 6);
    enc->dispatch_threads({n, n, 1}, {8, 8, 1});
    enc->end_encoding();
    cmd->commit();
    cmd->wait_until_completed();

    std::vector<double> c(static_cast<std::size_t>(n) * n);
    join_matrix(static_cast<const float*>(c_hi->contents()),
                static_cast<const float*>(c_lo->contents()), c.data(),
                c.size());
    return c;
  }
};

TEST_F(Fp64ShaderTest, BeatsFp32ByManyDigits) {
  const std::uint32_t n = 64;
  std::vector<double> a(n * n);
  std::vector<double> b(n * n);
  util::fill_uniform(std::span<double>(a), 31);
  util::fill_uniform(std::span<double>(b), 32);

  // FP64 reference.
  std::vector<double> expected(n * n, 0.0);
  for (std::uint32_t i = 0; i < n; ++i) {
    for (std::uint32_t kk = 0; kk < n; ++kk) {
      for (std::uint32_t j = 0; j < n; ++j) {
        expected[i * n + j] += a[i * n + kk] * b[kk * n + j];
      }
    }
  }

  const auto got = run(a, b, n);

  // Also compute in plain FP32 for comparison.
  double fp32_worst = 0.0;
  double emu_worst = 0.0;
  for (std::uint32_t i = 0; i < n; ++i) {
    for (std::uint32_t j = 0; j < n; ++j) {
      float acc32 = 0.0f;
      for (std::uint32_t kk = 0; kk < n; ++kk) {
        acc32 += static_cast<float>(a[i * n + kk]) *
                 static_cast<float>(b[kk * n + j]);
      }
      fp32_worst = std::max(
          fp32_worst, std::fabs(expected[i * n + j] - acc32));
      emu_worst = std::max(
          emu_worst, std::fabs(expected[i * n + j] - got[i * n + j]));
    }
  }
  EXPECT_LT(emu_worst, 1e-9);              // ~49-bit accuracy
  EXPECT_LT(emu_worst, fp32_worst / 1e4);  // orders better than FP32
}

TEST_F(Fp64ShaderTest, ChargedTheDoubleSinglePenalty) {
  // The emulated path's compute time must exceed an FP32 kernel of the same
  // shape (same roofline efficiency, same traffic) by the ds_fma ops ratio,
  // kFlopsPerDsFma / 2 = 10.5x.
  const std::uint32_t n = 128;
  std::vector<double> a(n * n, 0.5);
  std::vector<double> b(n * n, 0.5);

  auto& soc = system_.soc();
  const auto t0 = soc.clock().now();
  run(a, b, n);
  const auto emu_ns = static_cast<double>(soc.clock().now() - t0);

  soc::PerfModel perf(soc);
  const double nd = n;
  const double fp32_equiv_ns = perf.gpu_kernel_time_ns(
      2.0 * nd * nd * nd, 6.0 * nd * nd * sizeof(float), 0.15);
  const double overhead = soc.calib().stream.gpu_launch_overhead_ns;
  const double ratio = (emu_ns - overhead) / (fp32_equiv_ns - overhead);
  EXPECT_NEAR(ratio, fp64emu::kFlopsPerDsFma / 2.0, 1.0);
}

}  // namespace
}  // namespace ao::fp64emu
