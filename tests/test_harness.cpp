#include <gtest/gtest.h>

#include "core/system.hpp"
#include "harness/experiment.hpp"
#include "harness/matrix_workload.hpp"
#include "harness/reporting.hpp"
#include "harness/test_suite.hpp"
#include "util/aligned_buffer.hpp"

namespace ao::harness {
namespace {

// ----------------------------------------------------- matrix workload -----

TEST(MatrixWorkload, PaperSizeList) {
  const auto& sizes = paper_sizes();
  ASSERT_EQ(sizes.size(), 10u);
  EXPECT_EQ(sizes.front(), 32u);
  EXPECT_EQ(sizes.back(), 16384u);
  for (std::size_t i = 1; i < sizes.size(); ++i) {
    EXPECT_EQ(sizes[i], sizes[i - 1] * 2);  // powers of two
  }
}

TEST(MatrixWorkload, PaperSkipRule) {
  // CPU-Single and CPU-OMP "did not execute 8,192 and 16,384".
  EXPECT_TRUE(paper_skips(soc::GemmImpl::kCpuSingle, 8192));
  EXPECT_TRUE(paper_skips(soc::GemmImpl::kCpuOmp, 16384));
  EXPECT_FALSE(paper_skips(soc::GemmImpl::kCpuSingle, 4096));
  EXPECT_FALSE(paper_skips(soc::GemmImpl::kCpuAccelerate, 16384));
  EXPECT_FALSE(paper_skips(soc::GemmImpl::kGpuMps, 16384));
}

TEST(MatrixWorkload, PageAlignedAndPageRounded) {
  MatrixSet m(32, /*fill=*/false);  // 32*32*4 = 4096 B -> one 16 KiB page
  EXPECT_EQ(m.memory_length(), 16384u);
  EXPECT_TRUE(util::AlignedBuffer::is_aligned(m.left(), 16384));
  EXPECT_TRUE(util::AlignedBuffer::is_aligned(m.right(), 16384));
  EXPECT_TRUE(util::AlignedBuffer::is_aligned(m.out(), 16384));
}

TEST(MatrixWorkload, FillIsDeterministicAndInRange) {
  MatrixSet a(64, true, 42);
  MatrixSet b(64, true, 42);
  for (std::size_t i = 0; i < 64 * 64; ++i) {
    ASSERT_EQ(a.left()[i], b.left()[i]);
    ASSERT_GE(a.left()[i], 0.0f);
    ASSERT_LT(a.left()[i], 1.0f);
  }
  // Left and right use different seeds.
  bool any_different = false;
  for (std::size_t i = 0; i < 64 * 64; ++i) {
    any_different |= a.left()[i] != a.right()[i];
  }
  EXPECT_TRUE(any_different);
}

TEST(MatrixWorkload, ClearOutZeroes) {
  MatrixSet m(32, true);
  m.out()[5] = 3.0f;
  m.clear_out();
  EXPECT_EQ(m.out()[5], 0.0f);
}

// ----------------------------------------------------------- test_suite ----

TEST(TestSuite, InvokesCallbackPerSizeAndRep) {
  std::vector<unsigned int> seen;
  test_suite(
      [&seen](unsigned int n, unsigned int memory_length, float* left,
              float* right, float* out) {
        EXPECT_NE(left, nullptr);
        EXPECT_NE(right, nullptr);
        EXPECT_NE(out, nullptr);
        EXPECT_GE(memory_length, n * n * sizeof(float));
        EXPECT_EQ(memory_length % 16384, 0u);
        seen.push_back(n);
      },
      "", {32, 64}, 3);
  ASSERT_EQ(seen.size(), 6u);
  EXPECT_EQ(seen[0], 32u);
  EXPECT_EQ(seen[3], 64u);
}

TEST(TestSuite, RequiresCallback) {
  EXPECT_THROW(test_suite(nullptr, "", {32}, 1), util::InvalidArgument);
}

TEST(TestSuite, DiscardSemanticsRestoreMutatedInputs) {
  // A callback that clobbers its inputs must not leak the clobbered bits
  // into the next repetition: every invocation sees the same generated
  // matrices (what makes (n, seed) a sound cache identity).
  std::vector<float> first_left_elements;
  std::vector<float> first_right_elements;
  test_suite(
      [&](unsigned int n, unsigned int, float* left, float* right, float*) {
        first_left_elements.push_back(left[0]);
        first_right_elements.push_back(right[n - 1]);
        left[0] = -1.0f;       // clobber an input
        right[n - 1] = 99.0f;  // and the other one
      },
      "", {64}, 4);
  ASSERT_EQ(first_left_elements.size(), 4u);
  for (int rep = 1; rep < 4; ++rep) {
    EXPECT_EQ(first_left_elements[rep], first_left_elements[0]);
    EXPECT_EQ(first_right_elements[rep], first_right_elements[0]);
  }
}

TEST(TestSuite, SeedSelectsTheGeneratedData) {
  float seed42 = 0.0f;
  float seed7 = 0.0f;
  test_suite([&](unsigned int, unsigned int, float* left, float*, float*) {
    seed42 = left[0];
  }, "", {32}, 1, 42);
  test_suite([&](unsigned int, unsigned int, float* left, float*, float*) {
    seed7 = left[0];
  }, "", {32}, 1, 7);
  EXPECT_NE(seed42, seed7);
  // Same seed, repeated invocation: bit-identical.
  float seed42_again = -1.0f;
  test_suite([&](unsigned int, unsigned int, float* left, float*, float*) {
    seed42_again = left[0];
  }, "", {32}, 1, 42);
  EXPECT_EQ(seed42, seed42_again);
}

// ------------------------------------------------------------ experiment ---

class ExperimentTest : public ::testing::Test {
 protected:
  core::System system_{soc::ChipModel::kM1};
};

TEST_F(ExperimentTest, MeasureVerifiesSmallSizes) {
  GemmExperiment::Options opts;
  opts.repetitions = 3;
  opts.verify_n_max = 128;
  GemmExperiment experiment(system_.gemm_context(), opts);

  MatrixSet matrices(64, true);
  for (const auto kind : soc::kAllGemmImpls) {
    auto impl = gemm::create_gemm(kind, system_.gemm_context());
    matrices.clear_out();
    const GemmMeasurement m = experiment.measure(*impl, matrices);
    EXPECT_TRUE(m.functional) << soc::to_string(kind);
    EXPECT_TRUE(m.verified) << soc::to_string(kind)
                            << " err=" << m.max_error;
    EXPECT_EQ(m.time_ns.count(), 3u);
    EXPECT_GT(m.best_gflops, 0.0);
    EXPECT_GE(m.best_gflops, m.mean_gflops);
    EXPECT_GT(m.power_mw, 0.0);
    EXPECT_GT(m.gflops_per_watt, 0.0);
  }
}

TEST_F(ExperimentTest, FunctionalThresholdHonored) {
  GemmExperiment::Options opts;
  opts.repetitions = 1;
  opts.functional_n_max[soc::GemmImpl::kCpuSingle] = 32;
  GemmExperiment experiment(system_.gemm_context(), opts);

  auto impl = gemm::create_gemm(soc::GemmImpl::kCpuSingle,
                                system_.gemm_context());
  MatrixSet small(32, true);
  EXPECT_TRUE(experiment.measure(*impl, small).functional);
  MatrixSet big(64, true);
  const auto m = experiment.measure(*impl, big);
  EXPECT_FALSE(m.functional);
  EXPECT_FALSE(m.verified);
  // Model-only run must not write the output matrix.
  EXPECT_EQ(big.out()[0], 0.0f);
}

TEST_F(ExperimentTest, PowerPiggybacksOnRun) {
  GemmExperiment experiment(system_.gemm_context());
  auto impl = gemm::create_gemm(soc::GemmImpl::kGpuMps, system_.gemm_context());
  MatrixSet matrices(256, true);
  const auto m = experiment.measure(*impl, matrices);
  // GPU implementation: GPU power dominates the sample.
  EXPECT_GT(m.gpu_power_mw, m.cpu_power_mw);
}

TEST_F(ExperimentTest, RunSuiteHonorsSkips) {
  GemmExperiment::Options opts;
  opts.repetitions = 1;
  opts.use_powermetrics = false;
  // Keep everything model-only for speed.
  for (auto& [impl, ceiling] : opts.functional_n_max) {
    ceiling = 0;
  }
  GemmExperiment experiment(system_.gemm_context(), opts);
  const auto results = experiment.run_suite(
      {soc::GemmImpl::kCpuSingle, soc::GemmImpl::kGpuMps}, {4096, 8192});
  // CPU-Single skips 8192 -> 3 rows, not 4.
  ASSERT_EQ(results.size(), 3u);
  for (const auto& r : results) {
    EXPECT_FALSE(r.impl == soc::GemmImpl::kCpuSingle && r.n == 8192);
  }
}

TEST_F(ExperimentTest, NoPowermetricsLeavesPowerZero) {
  GemmExperiment::Options opts;
  opts.repetitions = 1;
  opts.use_powermetrics = false;
  GemmExperiment experiment(system_.gemm_context(), opts);
  auto impl = gemm::create_gemm(soc::GemmImpl::kCpuOmp, system_.gemm_context());
  MatrixSet matrices(64, true);
  const auto m = experiment.measure(*impl, matrices);
  EXPECT_EQ(m.power_mw, 0.0);
  EXPECT_EQ(m.gflops_per_watt, 0.0);
}

// ------------------------------------------------------------- reporting ---

std::vector<GemmMeasurement> tiny_results() {
  core::System system(soc::ChipModel::kM1);
  GemmExperiment::Options opts;
  opts.repetitions = 2;
  GemmExperiment experiment(system.gemm_context(), opts);
  return experiment.run_suite(
      {soc::GemmImpl::kCpuAccelerate, soc::GemmImpl::kGpuMps}, {32, 64});
}

TEST(Reporting, Figure2TableAndCsv) {
  const auto results = tiny_results();
  const auto table = figure2_table(soc::ChipModel::kM1, results);
  EXPECT_EQ(table.row_count(), 2u);  // two sizes
  const auto csv = figure2_csv(results);
  EXPECT_EQ(csv.row_count(), 4u);  // 2 impls x 2 sizes
  const auto rows = util::parse_csv(csv.to_string());
  EXPECT_EQ(rows[0][0], "chip");
  EXPECT_EQ(rows[1][0], "M1");
}

TEST(Reporting, Figure2PlotRenders) {
  const auto results = tiny_results();
  const std::string plot = figure2_plot(soc::ChipModel::kM1, results);
  EXPECT_NE(plot.find("GFLOPS"), std::string::npos);
  EXPECT_NE(plot.find("legend"), std::string::npos);
}

TEST(Reporting, PeakTablesHaveSixRows) {
  const auto results = tiny_results();
  EXPECT_EQ(peak_gflops_table(results).row_count(), 6u);
  EXPECT_EQ(peak_efficiency_table(results).row_count(), 6u);
}

TEST(Reporting, Figure1Artifacts) {
  StreamFigureEntry e;
  e.chip = soc::ChipModel::kM1;
  e.theoretical_gbs = 67.0;
  e.cpu_gbs = {55, 54, 58, 59};
  e.gpu_gbs = {60, 59, 58, 59};
  const auto table = figure1_table({e});
  EXPECT_EQ(table.row_count(), 2u);  // CPU + GPU rows
  const auto csv = figure1_csv({e});
  EXPECT_EQ(csv.row_count(), 8u);  // 2 agents x 4 kernels
  const std::string chart = figure1_chart({e});
  EXPECT_NE(chart.find("M1"), std::string::npos);
  EXPECT_NE(chart.find("theoretical"), std::string::npos);
}

TEST(Reporting, ForChipFilters) {
  std::vector<GemmMeasurement> mixed(3);
  mixed[0].chip = soc::ChipModel::kM1;
  mixed[1].chip = soc::ChipModel::kM2;
  mixed[2].chip = soc::ChipModel::kM1;
  EXPECT_EQ(for_chip(mixed, soc::ChipModel::kM1).size(), 2u);
  EXPECT_EQ(for_chip(mixed, soc::ChipModel::kM4).size(), 0u);
}

}  // namespace
}  // namespace ao::harness
