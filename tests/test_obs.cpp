#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "obs/profiler.hpp"

namespace ao::obs {
namespace {

/// A deterministic clock: every reading advances by `step`. With step 1 a
/// span opened at reading t and closed at reading t+k has duration exactly k.
TimelineProfiler::ClockFn counter_clock(std::uint64_t step = 1) {
  auto ticks = std::make_shared<std::atomic<std::uint64_t>>(0);
  return [ticks, step] { return ticks->fetch_add(step); };
}

// ------------------------------------------------------------ phase names --

TEST(ObsPhase, NamesRoundTrip) {
  for (std::size_t i = 0; i < kPhaseCount; ++i) {
    const Phase phase = static_cast<Phase>(i);
    const auto back = phase_from_name(phase_name(phase));
    ASSERT_TRUE(back.has_value()) << phase_name(phase);
    EXPECT_EQ(*back, phase);
  }
  EXPECT_FALSE(phase_from_name("no-such-phase").has_value());
  EXPECT_FALSE(phase_from_name("").has_value());
}

// ---------------------------------------------------------------- nesting --

TEST(ObsProfiler, SameThreadScopesNestAutomatically) {
  TimelineProfiler profiler(counter_clock());
  {
    TimelineProfiler::Scope outer(&profiler, Phase::kCampaign, 0, "outer");
    TimelineProfiler::Scope middle(&profiler, Phase::kShard);
    TimelineProfiler::Scope inner(&profiler, Phase::kExecute);
    EXPECT_GT(middle.id(), outer.id());
    EXPECT_GT(inner.id(), middle.id());
  }
  const auto spans = profiler.snapshot();
  ASSERT_EQ(spans.size(), 3u);
  // snapshot() is id-ordered: outer, middle, inner.
  EXPECT_EQ(spans[0].phase, Phase::kCampaign);
  EXPECT_EQ(spans[0].parent, 0u);
  EXPECT_EQ(spans[0].label, "outer");
  EXPECT_EQ(spans[1].phase, Phase::kShard);
  EXPECT_EQ(spans[1].parent, spans[0].id);
  EXPECT_EQ(spans[2].phase, Phase::kExecute);
  EXPECT_EQ(spans[2].parent, spans[1].id);
}

TEST(ObsProfiler, ClosedScopeStopsParentingSiblings) {
  TimelineProfiler profiler(counter_clock());
  TimelineProfiler::Scope root(&profiler, Phase::kCampaign, 0);
  {
    TimelineProfiler::Scope first(&profiler, Phase::kSchedule);
  }
  TimelineProfiler::Scope second(&profiler, Phase::kExecute);
  second.close();
  root.close();
  const auto spans = profiler.snapshot();
  ASSERT_EQ(spans.size(), 3u);
  // Id order: root, first, second. Both children parent to the root, not
  // to each other.
  EXPECT_EQ(spans[0].id, root.id());
  EXPECT_EQ(spans[1].parent, root.id());
  EXPECT_EQ(spans[2].parent, root.id());
}

TEST(ObsProfiler, ExplicitParentCrossesThreads) {
  TimelineProfiler profiler(counter_clock());
  TimelineProfiler::Scope root(&profiler, Phase::kCampaign, 0, "root");
  const std::uint64_t root_id = root.id();
  std::thread worker([&profiler, root_id] {
    // The cross-thread handoff: the driver parents explicitly to the root,
    // and nested scopes on this thread then inherit from it.
    TimelineProfiler::Scope shard(&profiler, Phase::kShard, root_id, "s0");
    TimelineProfiler::Scope transport(&profiler, Phase::kTransport);
    EXPECT_GT(transport.id(), shard.id());
  });
  worker.join();
  root.close();
  const auto spans = profiler.snapshot();
  ASSERT_EQ(spans.size(), 3u);
  std::uint64_t shard_id = 0;
  for (const Span& span : spans) {
    if (span.phase == Phase::kShard) {
      shard_id = span.id;
      EXPECT_EQ(span.parent, root_id);
    }
  }
  for (const Span& span : spans) {
    if (span.phase == Phase::kTransport) {
      EXPECT_EQ(span.parent, shard_id);
    }
  }
}

TEST(ObsProfiler, ScopesOfDifferentProfilersDoNotCrossParent) {
  TimelineProfiler a(counter_clock());
  TimelineProfiler b(counter_clock());
  TimelineProfiler::Scope outer_a(&a, Phase::kCampaign, 0);
  // b has no open scope of its own: inheriting must yield top-level, not
  // a's campaign span.
  TimelineProfiler::Scope inner_b(&b, Phase::kExecute);
  inner_b.close();
  const auto spans = b.snapshot();
  ASSERT_EQ(spans.size(), 1u);
  EXPECT_EQ(spans[0].parent, 0u);
}

TEST(ObsProfiler, NullProfilerScopesAreNoOps) {
  TimelineProfiler::Scope scope(nullptr, Phase::kExecute);
  EXPECT_EQ(scope.id(), 0u);
  scope.close();  // must not crash
}

// ------------------------------------------------------------ determinism --

TEST(ObsProfiler, CounterClockGivesDeterministicDurations) {
  TimelineProfiler profiler(counter_clock());
  {
    // Readings: open=0, close=1 -> duration 1, start 0.
    TimelineProfiler::Scope scope(&profiler, Phase::kExecute, 0, "job");
  }
  {
    // Readings: open=2, close=3.
    TimelineProfiler::Scope scope(&profiler, Phase::kExecute, 0, "job");
  }
  const auto spans = profiler.snapshot();
  ASSERT_EQ(spans.size(), 2u);
  EXPECT_EQ(spans[0].start_ns, 0u);
  EXPECT_EQ(spans[0].duration_ns, 1u);
  EXPECT_EQ(spans[1].start_ns, 2u);
  EXPECT_EQ(spans[1].duration_ns, 1u);
}

TEST(ObsProfiler, ManualRecordUsesGivenInterval) {
  TimelineProfiler profiler(counter_clock());
  const std::uint64_t id =
      profiler.record(Phase::kShard, 100, 250, 0, "local shard");
  EXPECT_NE(id, 0u);
  const auto spans = profiler.snapshot();
  ASSERT_EQ(spans.size(), 1u);
  EXPECT_EQ(spans[0].start_ns, 100u);
  EXPECT_EQ(spans[0].duration_ns, 150u);
  EXPECT_EQ(spans[0].label, "local shard");
}

// --------------------------------------------------------- drain / bounds --

TEST(ObsProfiler, DrainHandsSpansOverExactlyOnce) {
  TimelineProfiler profiler(counter_clock());
  { TimelineProfiler::Scope scope(&profiler, Phase::kExecute, 0); }
  EXPECT_EQ(profiler.span_count(), 1u);
  EXPECT_EQ(profiler.drain().size(), 1u);
  EXPECT_EQ(profiler.span_count(), 0u);
  EXPECT_TRUE(profiler.drain().empty());
}

TEST(ObsProfiler, OverflowDropsOldestAndCounts) {
  TimelineProfiler profiler(counter_clock());
  const std::size_t extra = 7;
  for (std::size_t i = 0;
       i < TimelineProfiler::kMaxSpansPerThread + extra; ++i) {
    TimelineProfiler::Scope scope(&profiler, Phase::kFrame, 0);
  }
  EXPECT_EQ(profiler.span_count(), TimelineProfiler::kMaxSpansPerThread);
  EXPECT_EQ(profiler.dropped(), extra);
  // The oldest spans went: the smallest retained id is extra + 1.
  const auto spans = profiler.snapshot();
  ASSERT_FALSE(spans.empty());
  EXPECT_EQ(spans.front().id, extra + 1);
}

TEST(ObsProfiler, ThreadsRecordToTheirOwnBuffers) {
  TimelineProfiler profiler(counter_clock());
  constexpr std::size_t kThreads = 8;
  constexpr std::size_t kPerThread = 200;
  std::vector<std::thread> threads;
  for (std::size_t t = 0; t < kThreads; ++t) {
    threads.emplace_back([&profiler] {
      for (std::size_t i = 0; i < kPerThread; ++i) {
        TimelineProfiler::Scope scope(&profiler, Phase::kExecute, 0);
      }
    });
  }
  for (std::thread& thread : threads) {
    thread.join();
  }
  const auto spans = profiler.snapshot();
  ASSERT_EQ(spans.size(), kThreads * kPerThread);
  // Ids are unique and the snapshot is id-sorted.
  for (std::size_t i = 1; i < spans.size(); ++i) {
    EXPECT_LT(spans[i - 1].id, spans[i].id);
  }
  EXPECT_EQ(profiler.dropped(), 0u);
}

// ------------------------------------------------------------ aggregation --

TEST(ObsStats, NearestRankPercentiles) {
  std::vector<Span> spans;
  for (std::uint64_t d = 1; d <= 100; ++d) {
    spans.push_back({d, 0, Phase::kExecute, 0, d, ""});
  }
  const auto stats = phase_stats(spans);
  ASSERT_EQ(stats.count(Phase::kExecute), 1u);
  const PhaseStats& execute = stats.at(Phase::kExecute);
  EXPECT_EQ(execute.count, 100u);
  EXPECT_EQ(execute.total_ns, 5050u);
  EXPECT_EQ(execute.p50_ns, 50u);
  EXPECT_EQ(execute.p95_ns, 95u);
  EXPECT_EQ(execute.max_ns, 100u);
}

TEST(ObsStats, SingleSpanPercentilesAreThatSpan) {
  const std::vector<Span> spans = {{1, 0, Phase::kMerge, 0, 42, ""}};
  const auto stats = phase_stats(spans);
  const PhaseStats& merge = stats.at(Phase::kMerge);
  EXPECT_EQ(merge.p50_ns, 42u);
  EXPECT_EQ(merge.p95_ns, 42u);
  EXPECT_EQ(merge.max_ns, 42u);
}

TEST(ObsStats, SubtreeFollowsParentLinks) {
  // Two campaign trees interleaved by id; subtree must pick exactly one.
  const std::vector<Span> spans = {
      {1, 0, Phase::kCampaign, 0, 10, "a"},
      {2, 0, Phase::kCampaign, 0, 10, "b"},
      {3, 1, Phase::kShard, 0, 5, "a/s0"},
      {4, 2, Phase::kShard, 0, 5, "b/s0"},
      {5, 3, Phase::kTransport, 0, 4, "a/s0/t"},
      {6, 4, Phase::kTransport, 0, 4, "b/s0/t"},
  };
  const auto tree_a = span_subtree(spans, 1);
  ASSERT_EQ(tree_a.size(), 3u);
  EXPECT_EQ(tree_a[0].id, 1u);
  EXPECT_EQ(tree_a[1].id, 3u);
  EXPECT_EQ(tree_a[2].id, 5u);
  const auto tree_b = span_subtree(spans, 2);
  ASSERT_EQ(tree_b.size(), 3u);
  EXPECT_EQ(tree_b[0].label, "b");
  EXPECT_TRUE(span_subtree(spans, 99).empty());
}

TEST(ObsJson, TimelineJsonCarriesSchemaAndSpans) {
  const std::vector<Span> spans = {
      {1, 0, Phase::kCampaign, 0, 10, "with \"quotes\""},
  };
  const std::string json = timeline_json(7, "sweep", "alice", spans);
  EXPECT_NE(json.find("\"schema\": \"ao-profile/1\""), std::string::npos);
  EXPECT_NE(json.find("\"id\": 7"), std::string::npos);
  EXPECT_NE(json.find("\"name\": \"sweep\""), std::string::npos);
  EXPECT_NE(json.find("\"client\": \"alice\""), std::string::npos);
  EXPECT_NE(json.find("\"phase\": \"campaign\""), std::string::npos);
  EXPECT_NE(json.find("with \\\"quotes\\\""), std::string::npos);
}

}  // namespace
}  // namespace ao::obs
