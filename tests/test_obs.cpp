#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "obs/metrics.hpp"
#include "obs/profiler.hpp"
#include "obs/span_codec.hpp"

namespace ao::obs {
namespace {

/// A deterministic clock: every reading advances by `step`. With step 1 a
/// span opened at reading t and closed at reading t+k has duration exactly k.
TimelineProfiler::ClockFn counter_clock(std::uint64_t step = 1) {
  auto ticks = std::make_shared<std::atomic<std::uint64_t>>(0);
  return [ticks, step] { return ticks->fetch_add(step); };
}

// ------------------------------------------------------------ phase names --

TEST(ObsPhase, NamesRoundTrip) {
  for (std::size_t i = 0; i < kPhaseCount; ++i) {
    const Phase phase = static_cast<Phase>(i);
    const auto back = phase_from_name(phase_name(phase));
    ASSERT_TRUE(back.has_value()) << phase_name(phase);
    EXPECT_EQ(*back, phase);
  }
  EXPECT_FALSE(phase_from_name("no-such-phase").has_value());
  EXPECT_FALSE(phase_from_name("").has_value());
}

// ---------------------------------------------------------------- nesting --

TEST(ObsProfiler, SameThreadScopesNestAutomatically) {
  TimelineProfiler profiler(counter_clock());
  {
    TimelineProfiler::Scope outer(&profiler, Phase::kCampaign, 0, "outer");
    TimelineProfiler::Scope middle(&profiler, Phase::kShard);
    TimelineProfiler::Scope inner(&profiler, Phase::kExecute);
    EXPECT_GT(middle.id(), outer.id());
    EXPECT_GT(inner.id(), middle.id());
  }
  const auto spans = profiler.snapshot();
  ASSERT_EQ(spans.size(), 3u);
  // snapshot() is id-ordered: outer, middle, inner.
  EXPECT_EQ(spans[0].phase, Phase::kCampaign);
  EXPECT_EQ(spans[0].parent, 0u);
  EXPECT_EQ(spans[0].label, "outer");
  EXPECT_EQ(spans[1].phase, Phase::kShard);
  EXPECT_EQ(spans[1].parent, spans[0].id);
  EXPECT_EQ(spans[2].phase, Phase::kExecute);
  EXPECT_EQ(spans[2].parent, spans[1].id);
}

TEST(ObsProfiler, ClosedScopeStopsParentingSiblings) {
  TimelineProfiler profiler(counter_clock());
  TimelineProfiler::Scope root(&profiler, Phase::kCampaign, 0);
  {
    TimelineProfiler::Scope first(&profiler, Phase::kSchedule);
  }
  TimelineProfiler::Scope second(&profiler, Phase::kExecute);
  second.close();
  root.close();
  const auto spans = profiler.snapshot();
  ASSERT_EQ(spans.size(), 3u);
  // Id order: root, first, second. Both children parent to the root, not
  // to each other.
  EXPECT_EQ(spans[0].id, root.id());
  EXPECT_EQ(spans[1].parent, root.id());
  EXPECT_EQ(spans[2].parent, root.id());
}

TEST(ObsProfiler, ExplicitParentCrossesThreads) {
  TimelineProfiler profiler(counter_clock());
  TimelineProfiler::Scope root(&profiler, Phase::kCampaign, 0, "root");
  const std::uint64_t root_id = root.id();
  std::thread worker([&profiler, root_id] {
    // The cross-thread handoff: the driver parents explicitly to the root,
    // and nested scopes on this thread then inherit from it.
    TimelineProfiler::Scope shard(&profiler, Phase::kShard, root_id, "s0");
    TimelineProfiler::Scope transport(&profiler, Phase::kTransport);
    EXPECT_GT(transport.id(), shard.id());
  });
  worker.join();
  root.close();
  const auto spans = profiler.snapshot();
  ASSERT_EQ(spans.size(), 3u);
  std::uint64_t shard_id = 0;
  for (const Span& span : spans) {
    if (span.phase == Phase::kShard) {
      shard_id = span.id;
      EXPECT_EQ(span.parent, root_id);
    }
  }
  for (const Span& span : spans) {
    if (span.phase == Phase::kTransport) {
      EXPECT_EQ(span.parent, shard_id);
    }
  }
}

TEST(ObsProfiler, ScopesOfDifferentProfilersDoNotCrossParent) {
  TimelineProfiler a(counter_clock());
  TimelineProfiler b(counter_clock());
  TimelineProfiler::Scope outer_a(&a, Phase::kCampaign, 0);
  // b has no open scope of its own: inheriting must yield top-level, not
  // a's campaign span.
  TimelineProfiler::Scope inner_b(&b, Phase::kExecute);
  inner_b.close();
  const auto spans = b.snapshot();
  ASSERT_EQ(spans.size(), 1u);
  EXPECT_EQ(spans[0].parent, 0u);
}

TEST(ObsProfiler, NullProfilerScopesAreNoOps) {
  TimelineProfiler::Scope scope(nullptr, Phase::kExecute);
  EXPECT_EQ(scope.id(), 0u);
  scope.close();  // must not crash
}

// ------------------------------------------------------------ determinism --

TEST(ObsProfiler, CounterClockGivesDeterministicDurations) {
  TimelineProfiler profiler(counter_clock());
  {
    // Readings: open=0, close=1 -> duration 1, start 0.
    TimelineProfiler::Scope scope(&profiler, Phase::kExecute, 0, "job");
  }
  {
    // Readings: open=2, close=3.
    TimelineProfiler::Scope scope(&profiler, Phase::kExecute, 0, "job");
  }
  const auto spans = profiler.snapshot();
  ASSERT_EQ(spans.size(), 2u);
  EXPECT_EQ(spans[0].start_ns, 0u);
  EXPECT_EQ(spans[0].duration_ns, 1u);
  EXPECT_EQ(spans[1].start_ns, 2u);
  EXPECT_EQ(spans[1].duration_ns, 1u);
}

TEST(ObsProfiler, ManualRecordUsesGivenInterval) {
  TimelineProfiler profiler(counter_clock());
  const std::uint64_t id =
      profiler.record(Phase::kShard, 100, 250, 0, "local shard");
  EXPECT_NE(id, 0u);
  const auto spans = profiler.snapshot();
  ASSERT_EQ(spans.size(), 1u);
  EXPECT_EQ(spans[0].start_ns, 100u);
  EXPECT_EQ(spans[0].duration_ns, 150u);
  EXPECT_EQ(spans[0].label, "local shard");
}

// --------------------------------------------------------- drain / bounds --

TEST(ObsProfiler, DrainHandsSpansOverExactlyOnce) {
  TimelineProfiler profiler(counter_clock());
  { TimelineProfiler::Scope scope(&profiler, Phase::kExecute, 0); }
  EXPECT_EQ(profiler.span_count(), 1u);
  EXPECT_EQ(profiler.drain().size(), 1u);
  EXPECT_EQ(profiler.span_count(), 0u);
  EXPECT_TRUE(profiler.drain().empty());
}

TEST(ObsProfiler, OverflowDropsOldestAndCounts) {
  TimelineProfiler profiler(counter_clock());
  const std::size_t extra = 7;
  for (std::size_t i = 0;
       i < TimelineProfiler::kMaxSpansPerThread + extra; ++i) {
    TimelineProfiler::Scope scope(&profiler, Phase::kFrame, 0);
  }
  EXPECT_EQ(profiler.span_count(), TimelineProfiler::kMaxSpansPerThread);
  EXPECT_EQ(profiler.dropped(), extra);
  // The oldest spans went: the smallest retained id is extra + 1.
  const auto spans = profiler.snapshot();
  ASSERT_FALSE(spans.empty());
  EXPECT_EQ(spans.front().id, extra + 1);
}

TEST(ObsProfiler, ThreadsRecordToTheirOwnBuffers) {
  TimelineProfiler profiler(counter_clock());
  constexpr std::size_t kThreads = 8;
  constexpr std::size_t kPerThread = 200;
  std::vector<std::thread> threads;
  for (std::size_t t = 0; t < kThreads; ++t) {
    threads.emplace_back([&profiler] {
      for (std::size_t i = 0; i < kPerThread; ++i) {
        TimelineProfiler::Scope scope(&profiler, Phase::kExecute, 0);
      }
    });
  }
  for (std::thread& thread : threads) {
    thread.join();
  }
  const auto spans = profiler.snapshot();
  ASSERT_EQ(spans.size(), kThreads * kPerThread);
  // Ids are unique and the snapshot is id-sorted.
  for (std::size_t i = 1; i < spans.size(); ++i) {
    EXPECT_LT(spans[i - 1].id, spans[i].id);
  }
  EXPECT_EQ(profiler.dropped(), 0u);
}

// ------------------------------------------------------------ aggregation --

TEST(ObsStats, NearestRankPercentiles) {
  std::vector<Span> spans;
  for (std::uint64_t d = 1; d <= 100; ++d) {
    spans.push_back({d, 0, Phase::kExecute, 0, d, ""});
  }
  const auto stats = phase_stats(spans);
  ASSERT_EQ(stats.count(Phase::kExecute), 1u);
  const PhaseStats& execute = stats.at(Phase::kExecute);
  EXPECT_EQ(execute.count, 100u);
  EXPECT_EQ(execute.total_ns, 5050u);
  EXPECT_EQ(execute.p50_ns, 50u);
  EXPECT_EQ(execute.p95_ns, 95u);
  EXPECT_EQ(execute.max_ns, 100u);
}

TEST(ObsStats, SingleSpanPercentilesAreThatSpan) {
  const std::vector<Span> spans = {{1, 0, Phase::kMerge, 0, 42, ""}};
  const auto stats = phase_stats(spans);
  const PhaseStats& merge = stats.at(Phase::kMerge);
  EXPECT_EQ(merge.p50_ns, 42u);
  EXPECT_EQ(merge.p95_ns, 42u);
  EXPECT_EQ(merge.max_ns, 42u);
}

TEST(ObsStats, SubtreeFollowsParentLinks) {
  // Two campaign trees interleaved by id; subtree must pick exactly one.
  const std::vector<Span> spans = {
      {1, 0, Phase::kCampaign, 0, 10, "a"},
      {2, 0, Phase::kCampaign, 0, 10, "b"},
      {3, 1, Phase::kShard, 0, 5, "a/s0"},
      {4, 2, Phase::kShard, 0, 5, "b/s0"},
      {5, 3, Phase::kTransport, 0, 4, "a/s0/t"},
      {6, 4, Phase::kTransport, 0, 4, "b/s0/t"},
  };
  const auto tree_a = span_subtree(spans, 1);
  ASSERT_EQ(tree_a.size(), 3u);
  EXPECT_EQ(tree_a[0].id, 1u);
  EXPECT_EQ(tree_a[1].id, 3u);
  EXPECT_EQ(tree_a[2].id, 5u);
  const auto tree_b = span_subtree(spans, 2);
  ASSERT_EQ(tree_b.size(), 3u);
  EXPECT_EQ(tree_b[0].label, "b");
  EXPECT_TRUE(span_subtree(spans, 99).empty());
}

TEST(ObsJson, TimelineJsonCarriesSchemaAndSpans) {
  const std::vector<Span> spans = {
      {1, 0, Phase::kCampaign, 0, 10, "with \"quotes\""},
  };
  const std::string json = timeline_json(7, "sweep", "alice", spans);
  EXPECT_NE(json.find("\"schema\": \"ao-profile/1\""), std::string::npos);
  EXPECT_NE(json.find("\"id\": 7"), std::string::npos);
  EXPECT_NE(json.find("\"name\": \"sweep\""), std::string::npos);
  EXPECT_NE(json.find("\"client\": \"alice\""), std::string::npos);
  EXPECT_NE(json.find("\"phase\": \"campaign\""), std::string::npos);
  EXPECT_NE(json.find("with \\\"quotes\\\""), std::string::npos);
}

TEST(ObsJson, OriginAppearsOnlyOnWorkerSpans) {
  std::vector<Span> spans = {
      {1, 0, Phase::kCampaign, 0, 10, "root"},
      {2, 1, Phase::kExecute, 2, 3, "gemm", "w1"},
  };
  const std::string json = timeline_json(1, "sweep", "anon", spans);
  // Exactly one origin key: the local span omits it, so pre-distributed
  // artifacts keep their byte layout.
  EXPECT_EQ(json.find("\"origin\""), json.rfind("\"origin\""));
  EXPECT_NE(json.find("\"origin\": \"w1\""), std::string::npos);
}

// ------------------------------------------------------------- span codec --

TEST(ObsSpanCodec, PayloadRoundTripsSpansAndOrigin) {
  const std::vector<Span> spans = {
      {1, 0, Phase::kExecute, 100, 40, "gemm m1 cpu-single"},
      {2, 1, Phase::kSerialize, 120, 5, ""},
      {3, 1, Phase::kFrame, 126, 4, "records"},
  };
  const std::string payload = encode_spans("w-unix", spans);
  EXPECT_EQ(payload.rfind(kSpanPayloadVersion, 0), 0u);

  std::string origin;
  std::string error;
  const auto decoded = decode_spans(payload, &origin, &error);
  ASSERT_TRUE(decoded.has_value()) << error;
  EXPECT_EQ(origin, "w-unix");
  ASSERT_EQ(decoded->size(), spans.size());
  for (std::size_t i = 0; i < spans.size(); ++i) {
    EXPECT_EQ((*decoded)[i].id, spans[i].id);
    EXPECT_EQ((*decoded)[i].parent, spans[i].parent);
    EXPECT_EQ((*decoded)[i].phase, spans[i].phase);
    EXPECT_EQ((*decoded)[i].start_ns, spans[i].start_ns);
    EXPECT_EQ((*decoded)[i].duration_ns, spans[i].duration_ns);
    EXPECT_EQ((*decoded)[i].label, spans[i].label);  // spaces survive
  }
}

TEST(ObsSpanCodec, MalformedPayloadsAreRejectedNotGuessed) {
  std::string origin;
  std::string error;
  // Version skew: a future payload format must not half-parse.
  EXPECT_FALSE(
      decode_spans("ao-profile/9\norigin w\n", &origin, &error).has_value());
  // Missing origin line.
  EXPECT_FALSE(decode_spans("ao-profile/1\nspan 1 0 execute 0 1\n", &origin,
                            &error)
                   .has_value());
  // Unknown phase name (a renamed enum on one side only).
  EXPECT_FALSE(decode_spans("ao-profile/1\norigin w\nspan 1 0 warp 0 1\n",
                            &origin, &error)
                   .has_value());
  EXPECT_NE(error.find("warp"), std::string::npos);
  // Truncated numeric fields.
  EXPECT_FALSE(decode_spans("ao-profile/1\norigin w\nspan 1 0 execute\n",
                            &origin, &error)
                   .has_value());
  // Negative numerics: istream >> uint64 would wrap these modulo 2^64 and
  // scramble parent remapping; the codec must reject them outright.
  EXPECT_FALSE(decode_spans("ao-profile/1\norigin w\nspan -1 0 execute -5 10\n",
                            &origin, &error)
                   .has_value());
  EXPECT_NE(error.find("malformed span line"), std::string::npos);
  // Out-of-range numerics (first value > UINT64_MAX) are malformed too.
  EXPECT_FALSE(decode_spans("ao-profile/1\norigin w\n"
                            "span 99999999999999999999 0 execute 0 1\n",
                            &origin, &error)
                   .has_value());
  // The empty timeline of an idle worker is valid.
  const auto empty = decode_spans("ao-profile/1\norigin w\n", &origin, &error);
  ASSERT_TRUE(empty.has_value());
  EXPECT_TRUE(empty->empty());
}

// ------------------------------------------------------------------ graft --

TEST(ObsGraft, OffsetAlignedSpansKeepRelativeTimingAndNesting) {
  TimelineProfiler daemon(counter_clock());
  TimelineProfiler::Scope transport(&daemon, Phase::kTransport, 0, "shard-0");
  const std::uint64_t window_start = daemon.now();  // reading 2

  // A worker clock running 1'000'000 ahead of the daemon's: spans measured
  // at 1'000'00x land back in single digits after the offset is applied.
  const std::vector<Span> worker_spans = {
      {1, 0, Phase::kExecute, 1'000'003, 6, "gemm"},
      {2, 1, Phase::kSerialize, 1'000'005, 2, "record"},
  };
  // Burn daemon readings 3..9 so the window has room for the aligned spans.
  for (int i = 0; i < 7; ++i) {
    daemon.now();
  }
  const std::size_t grafted =
      graft_spans(daemon, worker_spans, transport.id(), window_start,
                  daemon.now(), /*has_offset=*/true,
                  /*offset_ns=*/1'000'000, "w1");
  EXPECT_EQ(grafted, 2u);
  transport.close();

  const auto spans = daemon.snapshot();
  ASSERT_EQ(spans.size(), 3u);  // transport + 2 grafted
  const Span& execute = spans[1];
  const Span& serialize = spans[2];
  // Offset arithmetic is exact: 1'000'003 − 1'000'000 = 3.
  EXPECT_EQ(execute.start_ns, 3u);
  EXPECT_EQ(execute.duration_ns, 6u);
  EXPECT_EQ(serialize.start_ns, 5u);
  EXPECT_EQ(serialize.duration_ns, 2u);
  // Re-parenting: the worker root hangs off the transport span, the child
  // keeps its (remapped) parent; ids stay topological.
  EXPECT_EQ(execute.parent, transport.id());
  EXPECT_EQ(serialize.parent, execute.id);
  EXPECT_GT(execute.id, transport.id());
  EXPECT_GT(serialize.id, execute.id);
  EXPECT_EQ(execute.origin, "w1");
  EXPECT_EQ(serialize.origin, "w1");
}

TEST(ObsGraft, SkewBeyondTheWindowIsClampedNotNegative) {
  TimelineProfiler daemon(counter_clock());
  TimelineProfiler::Scope transport(&daemon, Phase::kTransport, 0, "shard-0");
  const std::uint64_t window_start = daemon.now();
  for (int i = 0; i < 3; ++i) {
    daemon.now();
  }
  const std::uint64_t window_end = daemon.now();

  // A wildly wrong offset estimate maps the span far before the window
  // (and its end far after): both edges clamp into [start, end], so the
  // grafted span still nests inside the transport with a non-negative
  // duration — the deterministic guarantee the merged timeline leans on.
  const std::vector<Span> worker_spans = {
      {1, 0, Phase::kExecute, 10, 1'000'000, "gemm"},
  };
  graft_spans(daemon, worker_spans, transport.id(), window_start, window_end,
              /*has_offset=*/true, /*offset_ns=*/500'000, "w1");
  transport.close();

  const auto spans = daemon.snapshot();
  ASSERT_EQ(spans.size(), 2u);
  const Span& grafted = spans[1];
  EXPECT_GE(grafted.start_ns, window_start);
  EXPECT_LE(grafted.start_ns + grafted.duration_ns, window_end);
}

TEST(ObsGraft, WithoutAnOffsetTheTimelineStartAligns) {
  TimelineProfiler daemon(counter_clock());
  TimelineProfiler::Scope transport(&daemon, Phase::kTransport, 0, "shard-0");
  const std::uint64_t window_start = daemon.now();
  for (int i = 0; i < 9; ++i) {
    daemon.now();
  }
  const std::vector<Span> worker_spans = {
      {1, 0, Phase::kExecute, 777'000, 3, "gemm"},
      {2, 1, Phase::kSerialize, 777'004, 2, "record"},
  };
  graft_spans(daemon, worker_spans, transport.id(), window_start,
              daemon.now(), /*has_offset=*/false, 0, "w1");
  transport.close();

  const auto spans = daemon.snapshot();
  ASSERT_EQ(spans.size(), 3u);
  // The earliest worker span lands exactly on the window start; relative
  // spacing inside the worker timeline is preserved.
  EXPECT_EQ(spans[1].start_ns, window_start);
  EXPECT_EQ(spans[2].start_ns, window_start + 4);
  EXPECT_EQ(spans[2].duration_ns, 2u);
}

TEST(ObsGraft, AdoptAllocatesFreshTopologicalIds) {
  TimelineProfiler profiler(counter_clock());
  TimelineProfiler::Scope scope(&profiler, Phase::kCampaign, 0, "root");
  Span foreign;
  foreign.id = 1;  // collides with the open scope's id on purpose
  foreign.parent = scope.id();
  foreign.phase = Phase::kExecute;
  foreign.origin = "w1";
  const std::uint64_t adopted = profiler.adopt(foreign);
  EXPECT_GT(adopted, scope.id());
  scope.close();
  const auto spans = profiler.snapshot();
  ASSERT_EQ(spans.size(), 2u);
  EXPECT_EQ(spans[1].id, adopted);
  EXPECT_EQ(spans[1].parent, spans[0].id);
  EXPECT_EQ(spans[1].origin, "w1");
}

// ---------------------------------------------------------------- metrics --

TEST(ObsMetrics, NamesAreStableSnakeCase) {
  for (std::size_t i = 0; i < kMetricCount; ++i) {
    const std::string name = metric_name(static_cast<Metric>(i));
    EXPECT_EQ(name.rfind("ao_", 0), 0u) << name;
    EXPECT_EQ(name.find_first_not_of("abcdefghijklmnopqrstuvwxyz_"),
              std::string::npos)
        << name;
  }
  EXPECT_EQ(metric_kind(Metric::kCampaignsTotal), MetricKind::kCounter);
  EXPECT_EQ(metric_kind(Metric::kQueueDepth), MetricKind::kGauge);
  EXPECT_EQ(metric_kind(Metric::kPhaseDurationNs), MetricKind::kHistogram);
}

TEST(ObsMetrics, RenderIsPrometheusTextExposition) {
  MetricsRegistry registry;
  registry.set(Metric::kCampaignsTotal, 3);
  registry.set(Metric::kQueueDepth, 1);
  registry.set(Metric::kWorkerRttNs, 1200, "w1");
  registry.set(Metric::kWorkerClockOffsetNs, -350, "w1");
  registry.observe(Metric::kPhaseDurationNs, 5'000, "execute");
  registry.observe(Metric::kPhaseDurationNs, 50'000'000, "execute");

  const std::string text = registry.render();
  // Metadata for every family, even sample-less ones — the scrape surface
  // is stable from the first request.
  EXPECT_NE(text.find("# HELP ao_campaigns_total "), std::string::npos);
  EXPECT_NE(text.find("# TYPE ao_campaigns_total counter\n"),
            std::string::npos);
  EXPECT_NE(text.find("# TYPE ao_workers_idle gauge\n"), std::string::npos);
  EXPECT_NE(text.find("# TYPE ao_phase_duration_ns histogram\n"),
            std::string::npos);
  EXPECT_NE(text.find("\nao_campaigns_total 3\n"), std::string::npos);
  EXPECT_NE(text.find("\nao_queue_depth 1\n"), std::string::npos);
  EXPECT_NE(text.find("\nao_worker_rtt_ns{worker=\"w1\"} 1200\n"),
            std::string::npos);
  EXPECT_NE(text.find("\nao_worker_clock_offset_ns{worker=\"w1\"} -350\n"),
            std::string::npos);
  // Histogram buckets are cumulative and topped by +Inf == count.
  EXPECT_NE(text.find("ao_phase_duration_ns_bucket{phase=\"execute\","
                      "le=\"10000\"} 1\n"),
            std::string::npos);
  EXPECT_NE(text.find("ao_phase_duration_ns_bucket{phase=\"execute\","
                      "le=\"100000000\"} 2\n"),
            std::string::npos);
  EXPECT_NE(text.find("ao_phase_duration_ns_bucket{phase=\"execute\","
                      "le=\"+Inf\"} 2\n"),
            std::string::npos);
  EXPECT_NE(text.find("ao_phase_duration_ns_sum{phase=\"execute\"} 50005000\n"),
            std::string::npos);
  EXPECT_NE(
      text.find("ao_phase_duration_ns_count{phase=\"execute\"} 2\n"),
      std::string::npos);
  // The OpenMetrics terminator is the protocol's end-of-reply sentinel.
  EXPECT_EQ(text.rfind("# EOF\n"), text.size() - 6);

  // clear() drops a retired worker's series entirely.
  registry.clear(Metric::kWorkerRttNs);
  EXPECT_EQ(registry.render().find("ao_worker_rtt_ns{"), std::string::npos);

  // replace() swaps a labelled family's full sample set in one call: the
  // retired w1 series vanishes and the new endpoints appear together.
  registry.replace(Metric::kWorkerClockOffsetNs,
                   {{"w2", 40}, {"w3", -7}});
  const std::string swapped = registry.render();
  EXPECT_EQ(swapped.find("ao_worker_clock_offset_ns{worker=\"w1\"}"),
            std::string::npos);
  EXPECT_NE(swapped.find("\nao_worker_clock_offset_ns{worker=\"w2\"} 40\n"),
            std::string::npos);
  EXPECT_NE(swapped.find("\nao_worker_clock_offset_ns{worker=\"w3\"} -7\n"),
            std::string::npos);
}

}  // namespace
}  // namespace ao::obs
