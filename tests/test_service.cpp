#include <gtest/gtest.h>

#include <sys/socket.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <csignal>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "util/error.hpp"

#include "fault_stream.hpp"
#include "orchestrator/record.hpp"
#include "orchestrator/result_cache.hpp"
#include "orchestrator/store_index.hpp"
#include "service/campaign_queue.hpp"
#include "service/frame.hpp"
#include "service/protocol.hpp"
#include "service/service.hpp"
#include "service/shard_planner.hpp"
#include "service/socket.hpp"
#include "service/worker_link.hpp"
#include "service/worker_pool.hpp"

namespace ao::service {
namespace {

using orchestrator::CacheKey;
using orchestrator::JobKind;
using orchestrator::MeasurementRecord;

// ---------------------------------------------------------------- protocol --

CampaignRequest full_request() {
  CampaignRequest request;
  request.name = "everything";
  request.client = "tester";
  request.priority = 7;
  request.chips = {soc::ChipModel::kM1, soc::ChipModel::kM3};
  request.impls = {soc::GemmImpl::kCpuSingle, soc::GemmImpl::kGpuMps};
  request.sizes = {32, 64};
  request.repetitions = 2;
  request.matrix_seed = 7;
  request.verify_n_max = 64;
  request.functional_n_max = 64;
  request.stream_threads = {1, 2};
  request.stream_repetitions = 3;
  request.stream_elements = 1u << 10;
  request.gpu_stream = true;
  request.gpu_stream_repetitions = 4;
  request.gpu_stream_elements = 1u << 10;
  request.precision_sizes = {24};
  request.precision_seed = 5;
  request.ane_sizes = {32};
  request.ane_functional = true;
  request.fp64emu_sizes = {24};
  request.fp64emu_seed = 11;
  request.sme_sizes = {32};
  request.sme_seed = 13;
  request.power_idle = true;
  request.power_window_seconds = 0.25;
  request.workers = 2;
  request.shards = 2;
  request.deadline_ms = 1500;
  request.shard_retries = 3;
  return request;
}

TEST(Protocol, RequestBlockRoundTripsThroughItsTextForm) {
  const CampaignRequest request = full_request();
  std::string error;
  const auto parsed = parse_request_lines(request.to_lines(), &error);
  ASSERT_TRUE(parsed.has_value()) << error;
  EXPECT_TRUE(*parsed == request);
}

TEST(Protocol, CampaignNamesAreFilesystemSafe) {
  EXPECT_TRUE(valid_campaign_name("fig2-sweep_v1.2"));
  EXPECT_FALSE(valid_campaign_name("a/b"));
  EXPECT_FALSE(valid_campaign_name("../../tmp/evil"));
  EXPECT_FALSE(valid_campaign_name(".."));
  EXPECT_FALSE(valid_campaign_name("spaced out"));
  EXPECT_FALSE(valid_campaign_name(std::string(65, 'a')));
  // The name lands in shard-store paths, so begin rejects traversal and
  // leaves no request open.
  RequestBuilder builder;
  EXPECT_TRUE(builder.begin("../evil").has_value());
  EXPECT_FALSE(builder.open());
  EXPECT_FALSE(builder.begin("ok-name").has_value());
}

TEST(Protocol, BuilderRejectsMalformedSetterLines) {
  RequestBuilder builder;
  ASSERT_FALSE(builder.begin("x").has_value());
  EXPECT_TRUE(builder.apply("chips m1,m9").has_value());
  EXPECT_TRUE(builder.apply("impls cpu-quantum").has_value());
  EXPECT_TRUE(builder.apply("sizes banana").has_value());
  EXPECT_TRUE(builder.apply("repetitions 0").has_value());
  EXPECT_TRUE(builder.apply("workers nope").has_value());
  EXPECT_TRUE(builder.apply("frobnicate 3").has_value());
  EXPECT_TRUE(builder.apply("deadline 86400001").has_value());
  EXPECT_TRUE(builder.apply("deadline soon").has_value());
  EXPECT_TRUE(builder.apply("retries 17").has_value());
  // The request is still usable after every rejection.
  EXPECT_FALSE(builder.apply("chips m1").has_value());
  EXPECT_FALSE(builder.apply("sme 32").has_value());
  EXPECT_FALSE(builder.apply("deadline 250").has_value());
  EXPECT_FALSE(builder.apply("retries 0").has_value());
  const CampaignRequest request = builder.take();
  EXPECT_TRUE(request.has_work());
}

TEST(Protocol, ImplNamesMatchTheFigureLegends) {
  EXPECT_EQ(gemm_impl_from_string("cpu-single"), soc::GemmImpl::kCpuSingle);
  EXPECT_EQ(gemm_impl_from_string("GPU-MPS"), soc::GemmImpl::kGpuMps);
  EXPECT_EQ(gemm_impl_from_string("gpu-cutlass"), soc::GemmImpl::kGpuCutlass);
  EXPECT_THROW(gemm_impl_from_string("tpu"), util::InvalidArgument);
}

// ------------------------------------------------------------- wire frames --

TEST(WireFrame, RoundTripsBinaryPayloadsBackToBack) {
  // Frames must be binary-safe: newlines, NULs and high bytes inside the
  // payload may not confuse the framing.
  std::string binary = "entry line one\nentry line two\n";
  binary.push_back('\0');
  binary.push_back('\xff');
  binary += "@frame1 looks like a header but is payload";
  const Frame first{"records", binary};
  const Frame second{"store", ""};

  std::stringstream wire;
  write_frame(wire, first);
  write_frame(wire, second);

  std::string error;
  const auto a = read_frame(wire, &error);
  ASSERT_TRUE(a.has_value()) << error;
  EXPECT_EQ(*a, first);
  const auto b = read_frame(wire, &error);
  ASSERT_TRUE(b.has_value()) << error;
  EXPECT_EQ(*b, second);
  // Clean end-of-stream is distinguishable from corruption.
  EXPECT_FALSE(read_frame(wire, &error).has_value());
  EXPECT_EQ(error, "closed");
}

TEST(WireFrame, RejectsTruncationCorruptionAndForeignVersions) {
  const std::string encoded = encode_frame({"task", "hello frames"});
  std::string error;
  {
    // Stream ends inside the payload.
    test::FaultStream in(encoded, test::Fault::kTruncate, encoded.size() - 5);
    EXPECT_FALSE(read_frame(in, &error).has_value());
    EXPECT_EQ(error, "frame-truncated");
  }
  {
    // The trailing newline is missing (a half-flushed frame).
    test::FaultStream in(encoded, test::Fault::kTruncate, encoded.size() - 1);
    EXPECT_FALSE(read_frame(in, &error).has_value());
    EXPECT_EQ(error, "frame-truncated");
  }
  {
    // A flipped payload byte fails the digest.
    test::FaultStream in(encoded, test::Fault::kCorrupt,
                         encoded.find("hello"));
    EXPECT_FALSE(read_frame(in, &error).has_value());
    EXPECT_EQ(error, "frame-digest-mismatch");
  }
  {
    // A future frame version is refused, not guessed at.
    std::istringstream in("@frame2 task 0 0\n\n");
    EXPECT_FALSE(read_frame(in, &error).has_value());
    EXPECT_EQ(error, "bad-frame-header");
  }
  {
    // An absurd length token is refused before any allocation happens.
    std::istringstream in("@frame1 task ffffffffffff 0\n");
    EXPECT_FALSE(read_frame(in, &error).has_value());
    EXPECT_EQ(error, "frame-oversized");
  }
  {
    // A newline-free garbage stream is cut off at the header cap instead
    // of growing a string without bound.
    std::istringstream in(std::string(1 << 20, 'x'));
    EXPECT_FALSE(read_frame(in, &error).has_value());
    EXPECT_EQ(error, "bad-frame-header");
  }
}

TEST(WireFrame, TaskPayloadRoundTripsThroughItsTextForm) {
  const CampaignRequest request = full_request();
  const std::vector<std::size_t> groups = {0, 2, 5};
  const std::string payload = encode_task(request, 3, groups);
  std::string error;
  const auto task = decode_task(payload, &error);
  ASSERT_TRUE(task.has_value()) << error;
  EXPECT_EQ(task->shard_index, 3u);
  EXPECT_EQ(task->groups, groups);
  EXPECT_TRUE(task->request == request);

  EXPECT_FALSE(decode_task("garbage", &error).has_value());
  EXPECT_FALSE(decode_task("shard 1\ngroups x\n", &error).has_value());
}

// ----------------------------------------------------------------- session --

std::filesystem::path temp_dir(const std::string& name) {
  const auto dir = std::filesystem::temp_directory_path() / ("ao_svc_" + name);
  std::filesystem::remove_all(dir);
  std::filesystem::create_directories(dir);
  return dir;
}

std::vector<std::string> serve_lines(CampaignService& service,
                                     const std::string& input) {
  std::istringstream in(input);
  std::ostringstream out;
  service.serve(in, out);
  std::vector<std::string> lines;
  std::istringstream reader(out.str());
  std::string line;
  while (std::getline(reader, line)) {
    lines.push_back(line);
  }
  return lines;
}

bool starts_with(const std::string& line, const std::string& prefix) {
  return line.rfind(prefix, 0) == 0;
}

bool wait_until(const std::function<bool()>& condition,
                int timeout_ms = 20000) {
  for (int waited = 0; waited < timeout_ms; waited += 2) {
    if (condition()) {
      return true;
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
  }
  return condition();
}

std::size_t count_prefixed(const std::vector<std::string>& lines,
                           const std::string& prefix) {
  std::size_t count = 0;
  for (const auto& line : lines) {
    if (starts_with(line, prefix)) {
      ++count;
    }
  }
  return count;
}

TEST(CampaignService, MalformedRequestsGetErrorRepliesNotACrash) {
  CampaignService service({});
  const auto lines = serve_lines(service,
                                 "warp 9\n"
                                 "run\n"
                                 "begin bad\n"
                                 "chips m1,m9\n"
                                 "sizes x\n"
                                 "begin nested\n"
                                 "run\n"         // no chips accepted -> error
                                 "begin empty\n"
                                 "chips m1\n"
                                 "run\n"         // no work -> error
                                 "ping\n");
  // Every bad line answered with an error; the session survived to the pong.
  EXPECT_GE(count_prefixed(lines, "error "), 6u);
  ASSERT_FALSE(lines.empty());
  EXPECT_EQ(lines.back(), "pong");
  EXPECT_EQ(count_prefixed(lines, "record "), 0u);
}

TEST(CampaignService, UnknownCommandOutsideARequestIsAnError) {
  CampaignService service({});
  const auto lines = serve_lines(service, "chips m1\nshutdown\n");
  ASSERT_EQ(lines.size(), 2u);
  EXPECT_TRUE(starts_with(lines[0], "error "));
  EXPECT_EQ(lines[1], "ok shutdown");
}

/// A small mixed campaign covering every JobKind, sized for test time.
std::string nine_kind_block(std::size_t workers, std::size_t shards) {
  std::ostringstream out;
  out << "begin ninekinds\n"
         "chips m1,m3\n"
         "impls cpu-single,gpu-mps\n"
         "sizes 32\n"
         "repetitions 2\n"
         "stream 1,2 2 1024\n"
         "gpu-stream 2 1024\n"
         "precision 24 5\n"
         "ane 32\n"
         "fp64emu 24 11\n"
         "sme 32 13\n"
         "power 0.25\n"
      << "workers " << workers << "\nshards " << shards << "\nrun\n";
  return out.str();
}

TEST(CampaignService, StreamsRecordsBeforeDoneInDependencyOrder) {
  CampaignService service({});
  const auto lines = serve_lines(service, nine_kind_block(2, 1));

  ASSERT_FALSE(lines.empty());
  EXPECT_TRUE(starts_with(lines.front(), "ok campaign "));
  EXPECT_TRUE(starts_with(lines.back(), "done campaign "));

  // Streamed records arrive incrementally: every record line sits strictly
  // between the ok header and the done trailer, interleaved with monotonic
  // progress lines.
  std::size_t records = 0;
  std::size_t last_progress = 0;
  for (std::size_t i = 1; i + 1 < lines.size(); ++i) {
    if (starts_with(lines[i], "record ")) {
      const auto entry = orchestrator::parse_store_entry(lines[i].substr(7));
      ASSERT_TRUE(entry.has_value()) << lines[i];
      ++records;
      // Dependency order: a GEMM measurement streams only after its verify
      // job settled, so the record already carries the verdict.
      if (entry->first.kind == JobKind::kGemmMeasure) {
        const auto& m =
            std::get<harness::GemmMeasurement>(entry->second);
        EXPECT_TRUE(m.verified)
            << "gemm record streamed before its verification";
      }
    } else if (starts_with(lines[i], "progress ")) {
      std::istringstream in(lines[i].substr(9));
      std::size_t done = 0;
      char slash = 0;
      std::size_t total = 0;
      ASSERT_TRUE(in >> done >> slash >> total);
      EXPECT_GT(done, last_progress);
      last_progress = done;
    }
  }
  // 2 chips x (2 gemm + 2 cpu-stream + 1 gpu-stream + 1 precision + 1 ane +
  // 1 fp64emu + 1 sme + 1 power) = 20 streamed records.
  EXPECT_EQ(records, 20u);
}

TEST(CampaignService, RepeatedCampaignIsServedFromTheWarmCache) {
  CampaignService service({});
  const auto first = serve_lines(service, nine_kind_block(2, 1));
  const auto second = serve_lines(service, nine_kind_block(2, 1));
  ASSERT_TRUE(starts_with(second.back(), "done campaign "));
  // "done campaign <id> records <n> executed <e> hits <h>"
  std::istringstream in(second.back());
  std::string word;
  std::size_t records = 0;
  std::size_t executed = 0;
  std::size_t hits = 0;
  in >> word >> word >> word >> word >> records >> word >> executed >> word >>
      hits;
  EXPECT_EQ(records, 20u);
  EXPECT_EQ(executed, 0u);  // every point came from the warm cache
  EXPECT_EQ(hits, 20u);
  EXPECT_EQ(count_prefixed(second, "record "), 20u);
}

// ------------------------------------------------------------ shard planner --

TEST(ShardPlanner, CoversEveryGroupExactlyOnceAndIsDeterministic) {
  std::string error;
  const auto request =
      parse_request_lines(full_request().to_lines(), &error);
  ASSERT_TRUE(request.has_value()) << error;
  const auto groups = request->to_campaign().groups();
  ASSERT_GT(groups.size(), 4u);

  const ShardPlan plan = plan_shards(groups, 3);
  ASSERT_EQ(plan.shard_count(), 3u);
  std::vector<std::size_t> seen;
  for (const auto& shard : plan.shard_groups) {
    seen.insert(seen.end(), shard.begin(), shard.end());
  }
  std::sort(seen.begin(), seen.end());
  std::vector<std::size_t> expected(groups.size());
  for (std::size_t i = 0; i < groups.size(); ++i) {
    expected[i] = i;
  }
  EXPECT_EQ(seen, expected);

  const ShardPlan again = plan_shards(groups, 3);
  EXPECT_EQ(plan.shard_groups, again.shard_groups);

  // Every shard carries real work and none carries all of it.
  double total = 0.0;
  for (const auto& g : groups) {
    total += estimated_group_cost(g);
  }
  const double heaviest =
      *std::max_element(plan.shard_costs.begin(), plan.shard_costs.end());
  EXPECT_GT(heaviest, 0.0);
  EXPECT_LT(heaviest, total);
}

TEST(ShardPlanner, MoreShardsThanGroupsLeavesTrailingShardsEmpty) {
  orchestrator::Campaign campaign;
  campaign.chips({soc::ChipModel::kM1}).impls({}).sizes({}).sme_gemm({32});
  const auto groups = campaign.groups();
  ASSERT_EQ(groups.size(), 1u);
  const ShardPlan plan = plan_shards(groups, 4);
  std::size_t populated = 0;
  for (const auto& shard : plan.shard_groups) {
    populated += shard.empty() ? 0 : 1;
  }
  EXPECT_EQ(populated, 1u);
}

// ------------------------------------------------------------- sharded run --

std::map<std::uint64_t, std::string> entries_by_key(
    orchestrator::ResultCache& cache) {
  std::map<std::uint64_t, std::string> out;
  for (const auto& [key, record] : cache.entries()) {
    out[key.fingerprint()] = orchestrator::serialize_record(record);
  }
  return out;
}

// The ISSUE's acceptance criterion: a two-worker sharded service run of the
// mixed campaign produces a merged result store equal per CacheKey — bit
// patterns included (serialize_record writes hex bit patterns, so string
// equality IS bit equality) — to the same campaign run single-process.
TEST(CampaignService, TwoWorkerShardedRunMatchesSingleProcessBitForBit) {
  const auto dir = temp_dir("sharded");

  CampaignService sharded({/*cache_capacity=*/4096,
                           /*store_path=*/"",
                           /*shard_dir=*/dir.string(),
                           /*worker_binary=*/""});
  const auto sharded_lines = serve_lines(sharded, nine_kind_block(2, 2));
  ASSERT_TRUE(starts_with(sharded_lines.back(), "done campaign "))
      << sharded_lines.back();
  EXPECT_NE(sharded_lines.back().find("shards 2"), std::string::npos);
  // The client observed streamed records before the campaign finished.
  EXPECT_EQ(count_prefixed(sharded_lines, "record "), 20u);

  CampaignService single({});
  const auto single_lines = serve_lines(single, nine_kind_block(2, 1));
  ASSERT_TRUE(starts_with(single_lines.back(), "done campaign "));

  const auto sharded_entries = entries_by_key(sharded.cache());
  const auto single_entries = entries_by_key(single.cache());
  ASSERT_EQ(sharded_entries.size(), 20u);
  EXPECT_EQ(sharded_entries, single_entries);

  std::filesystem::remove_all(dir);
}

TEST(CampaignService, RepeatedShardedCampaignIsServedFromTheWarmCache) {
  const auto dir = temp_dir("warm_sharded");
  CampaignService service({/*cache_capacity=*/4096, /*store_path=*/"",
                           /*shard_dir=*/dir.string(),
                           /*worker_binary=*/""});
  const auto first = serve_lines(service, nine_kind_block(2, 2));
  ASSERT_TRUE(starts_with(first.back(), "done campaign "));
  // The rerun streams every point from the warm cache: no worker spawns,
  // nothing merges.
  const auto second = serve_lines(service, nine_kind_block(2, 2));
  ASSERT_TRUE(starts_with(second.back(), "done campaign "));
  EXPECT_EQ(count_prefixed(second, "record "), 20u);
  EXPECT_NE(second.back().find("merged 0"), std::string::npos);
  EXPECT_NE(second.back().find("hits 20"), std::string::npos);
  EXPECT_NE(second.back().find("shards 0"), std::string::npos);
  std::filesystem::remove_all(dir);
}

// The tentpole acceptance criterion: two remote workers connected over
// real byte streams (socketpairs — the same FdStreamBuf transport the
// daemon's sockets use), a sharded campaign whose shards travel as frames,
// result stores shipped back over the connection — and a merged warm cache
// bit-identical to the single-process run, with NO shard file ever touching
// the shared filesystem.
TEST(CampaignService, RemoteWorkersRunShardsOverSocketsBitIdentical) {
  const auto dir = temp_dir("remote");
  CampaignService::Config config;
  config.shard_dir = dir.string();
  config.remote_only = true;  // a local shard run would hide a frame bug
  config.remote_wait_ms = 20000;
  CampaignService service(std::move(config));

  int pair_a[2];
  int pair_b[2];
  ASSERT_EQ(::socketpair(AF_UNIX, SOCK_STREAM, 0, pair_a), 0);
  ASSERT_EQ(::socketpair(AF_UNIX, SOCK_STREAM, 0, pair_b), 0);
  std::thread serve_a([&service, fd = pair_a[0]] {
    SocketStream stream(fd);
    service.serve(stream, stream);
  });
  std::thread serve_b([&service, fd = pair_b[0]] {
    SocketStream stream(fd);
    service.serve(stream, stream);
  });
  std::thread worker_a([fd = pair_a[1]] {
    SocketStream stream(fd);
    EXPECT_EQ(run_worker_session(stream, stream, "wa"), 0);
  });
  std::thread worker_b([fd = pair_b[1]] {
    SocketStream stream(fd);
    EXPECT_EQ(run_worker_session(stream, stream, "wb"), 0);
  });

  const auto lines = serve_lines(service, nine_kind_block(2, 2));
  ASSERT_TRUE(starts_with(lines.back(), "done campaign ")) << lines.back();
  EXPECT_NE(lines.back().find("shards 2 remote 2"), std::string::npos)
      << lines.back();
  EXPECT_EQ(count_prefixed(lines, "record "), 20u);
  // Per-shard lifecycle events: a start and a done per shard.
  EXPECT_GE(count_prefixed(lines, "shard "), 4u);
  // The whole exchange happened over the sockets: the shard scratch
  // directory was never written to.
  EXPECT_TRUE(std::filesystem::is_empty(dir));

  // Shutdown releases the parked workers; every thread drains cleanly and
  // the workers exit 0 off the `bye` frame.
  serve_lines(service, "shutdown\n");
  serve_a.join();
  serve_b.join();
  worker_a.join();
  worker_b.join();

  CampaignService single({});
  const auto single_lines = serve_lines(single, nine_kind_block(2, 1));
  ASSERT_TRUE(starts_with(single_lines.back(), "done campaign "));
  const auto remote_entries = entries_by_key(service.cache());
  ASSERT_EQ(remote_entries.size(), 20u);
  EXPECT_EQ(remote_entries, entries_by_key(single.cache()));
  std::filesystem::remove_all(dir);
}

// A worker that dies while idle is only discovered at checkout (park()
// never reads the socket). The shard it was handed received nothing, so —
// without remote_only — it must fall back to the local worker pool and the
// campaign must still succeed.
TEST(CampaignService, DeadIdleWorkerFallsBackToLocalShards) {
  std::signal(SIGPIPE, SIG_IGN);  // writing the task frame hits a dead peer
  const auto dir = temp_dir("fallback");
  CampaignService service({/*cache_capacity=*/4096, /*store_path=*/"",
                           /*shard_dir=*/dir.string(),
                           /*worker_binary=*/""});
  int fds[2];
  ASSERT_EQ(::socketpair(AF_UNIX, SOCK_STREAM, 0, fds), 0);
  std::thread server([&service, fd = fds[0]] {
    SocketStream stream(fd);
    service.serve(stream, stream);
  });
  {
    // Register, then die: the SocketStream destructor closes the fd while
    // the registry still lists the endpoint as idle.
    SocketStream doomed(fds[1]);
    doomed << "worker doomed\n";
    doomed.flush();
    std::string ack;
    ASSERT_TRUE(std::getline(doomed, ack));
  }
  ASSERT_TRUE(wait_until([&] { return service.workers().idle_count() == 1; }));

  const auto lines = serve_lines(service, nine_kind_block(2, 2));
  ASSERT_TRUE(starts_with(lines.back(), "done campaign ")) << lines.back();
  EXPECT_NE(lines.back().find("shards 2"), std::string::npos);
  EXPECT_EQ(count_prefixed(lines, "record "), 20u);

  serve_lines(service, "shutdown\n");
  server.join();
  std::filesystem::remove_all(dir);
}

TEST(CampaignService, RemoteOnlyWithoutWorkersFailsTheCampaignNotTheSession) {
  CampaignService::Config config;
  config.remote_only = true;
  config.remote_wait_ms = 50;
  CampaignService service(std::move(config));
  const auto lines = serve_lines(service, nine_kind_block(1, 2) + "ping\n");
  ASSERT_FALSE(lines.empty());
  EXPECT_EQ(lines.back(), "pong");  // the session survived
  bool failed = false;
  for (const auto& line : lines) {
    if (starts_with(line, "error exec-failed") &&
        line.find("no remote workers") != std::string::npos) {
      failed = true;
    }
  }
  EXPECT_TRUE(failed);
  EXPECT_EQ(count_prefixed(lines, "record "), 0u);
}

TEST(WorkerPool, ShardFailureIsReportedNotFatal) {
  const auto dir = temp_dir("failure");
  CampaignRequest request;  // no chips: run_shard throws inside the worker
  request.sme_sizes = {32};
  WorkerPool pool;  // in-process mode
  pool.start(request, "", {{0, {0}, (dir / "s0.aocache").string()}});
  const auto outcomes = pool.wait();
  ASSERT_EQ(outcomes.size(), 1u);
  EXPECT_NE(outcomes[0].exit_code, 0);
  EXPECT_FALSE(outcomes[0].error.empty());
  std::filesystem::remove_all(dir);
}

// ----------------------------------------------------------- campaign queue --

TEST(CampaignQueueTest, ResourceClassesDeriveFromJobKindsAndImpls) {
  using orchestrator::JobKind;
  EXPECT_EQ(resources_for(JobKind::kGemmMeasure, soc::GemmImpl::kCpuSingle),
            kResourceCpu);
  EXPECT_EQ(resources_for(JobKind::kGemmMeasure, soc::GemmImpl::kGpuMps),
            kResourceGpu);
  EXPECT_EQ(resources_for(JobKind::kStream, soc::GemmImpl::kCpuSingle),
            kResourceCpu);
  EXPECT_EQ(resources_for(JobKind::kGpuStream, soc::GemmImpl::kCpuSingle),
            kResourceGpu);
  EXPECT_EQ(resources_for(JobKind::kAneInference, soc::GemmImpl::kCpuSingle),
            kResourceAne);
  EXPECT_EQ(resources_for(JobKind::kSmeGemm, soc::GemmImpl::kCpuSingle),
            kResourceCpu);
  EXPECT_EQ(resources_for(JobKind::kFp64Emulation, soc::GemmImpl::kCpuSingle),
            kResourceGpu);
  EXPECT_EQ(resources_for(JobKind::kPowerIdle, soc::GemmImpl::kCpuSingle),
            kResourceAll);

  CampaignRequest gemm_and_ane;
  gemm_and_ane.chips = {soc::ChipModel::kM1};
  gemm_and_ane.impls = {soc::GemmImpl::kCpuSingle, soc::GemmImpl::kGpuMps};
  gemm_and_ane.sizes = {32};
  gemm_and_ane.ane_sizes = {32};
  EXPECT_EQ(resources_for(gemm_and_ane),
            kResourceCpu | kResourceGpu | kResourceAne);
  EXPECT_EQ(resources_to_string(kResourceCpu | kResourceAne), "cpu+ane");
  EXPECT_EQ(resources_to_string(0), "none");
}

TEST(CampaignQueueTest, DisjointCampaignsRunConcurrently) {
  CampaignQueue queue;
  auto cpu = queue.submit("a", 0, kResourceCpu);
  auto ane = queue.submit("b", 0, kResourceAne);
  auto gpu = queue.submit("c", 0, kResourceGpu);
  ASSERT_TRUE(cpu && ane && gpu);
  EXPECT_TRUE(cpu->try_start());
  EXPECT_TRUE(ane->try_start());
  EXPECT_TRUE(gpu->try_start());
  EXPECT_EQ(queue.running_count(), 3u);
  EXPECT_EQ(queue.peak_running(), 3u);
}

TEST(CampaignQueueTest, ConflictingCampaignsKeepSubmissionOrder) {
  CampaignQueue queue;
  auto first = queue.submit("a", 0, kResourceCpu);
  auto second = queue.submit("b", 0, kResourceCpu);
  ASSERT_TRUE(first && second);
  EXPECT_TRUE(first->try_start());
  EXPECT_FALSE(second->try_start());  // conflicts with the running first
  EXPECT_EQ(second->position(), 1u);
  first.reset();  // first finishes
  EXPECT_TRUE(second->try_start());
}

TEST(CampaignQueueTest, HigherPriorityJumpsTheQueue) {
  CampaignQueue queue;
  auto running = queue.submit("a", 0, kResourceCpu);
  ASSERT_TRUE(running->try_start());
  auto low = queue.submit("b", 0, kResourceCpu);
  auto high = queue.submit("c", 9, kResourceCpu);
  ASSERT_TRUE(low && high);
  EXPECT_FALSE(low->try_start());
  EXPECT_FALSE(high->try_start());
  // The later, higher-priority submit ranks ahead of the earlier one.
  EXPECT_EQ(high->position(), 1u);
  EXPECT_EQ(low->position(), 2u);
  running.reset();
  EXPECT_FALSE(low->try_start());  // must not overtake the conflicting high
  EXPECT_TRUE(high->try_start());
  high.reset();
  EXPECT_TRUE(low->try_start());
}

TEST(CampaignQueueTest, BackfillOnlyAroundDisjointWaiters) {
  CampaignQueue queue;
  auto running = queue.submit("a", 0, kResourceCpu);
  ASSERT_TRUE(running->try_start());
  auto waiting_cpu = queue.submit("b", 5, kResourceCpu);
  EXPECT_FALSE(waiting_cpu->try_start());
  // Disjoint from the running campaign AND from the better-ranked waiter:
  // may backfill.
  auto ane = queue.submit("c", 0, kResourceAne);
  EXPECT_TRUE(ane->try_start());
  // Conflicts with the better-ranked waiting_cpu: starting it could delay
  // that campaign's start, so it must wait even though nothing *running*
  // holds the CPU+GPU claim it wants... (the GPU half is free).
  auto cpu_gpu = queue.submit("d", 0, kResourceCpu | kResourceGpu);
  EXPECT_FALSE(cpu_gpu->try_start());
}

TEST(CampaignQueueTest, QueuedQuotaRejectsStructurally) {
  CampaignQueue::Limits limits;
  limits.max_queued_per_client = 1;
  CampaignQueue queue(limits);
  auto running = queue.submit("a", 0, kResourceCpu);
  ASSERT_TRUE(running->try_start());
  auto waiting = queue.submit("a", 0, kResourceCpu);
  ASSERT_TRUE(waiting != nullptr);  // running doesn't count against queued
  CampaignQueue::Rejection rejection;
  auto rejected = queue.submit("a", 0, kResourceAne, &rejection);
  EXPECT_EQ(rejected, nullptr);
  EXPECT_EQ(rejection.code, "quota-queued");
  EXPECT_NE(rejection.message.find("'a'"), std::string::npos);
  EXPECT_EQ(queue.rejections(), 1u);
  // A different client is unaffected.
  auto other = queue.submit("b", 0, kResourceAne, &rejection);
  EXPECT_TRUE(other != nullptr);
  const auto stats = queue.client_stats();
  EXPECT_EQ(stats.at("a").running, 1u);
  EXPECT_EQ(stats.at("a").queued, 1u);
  EXPECT_EQ(stats.at("b").queued, 1u);
}

TEST(CampaignQueueTest, RunningQuotasHoldCampaignsInTheQueue) {
  CampaignQueue::Limits limits;
  limits.max_running_per_client = 1;
  limits.max_running = 2;
  CampaignQueue queue(limits);
  auto a1 = queue.submit("a", 0, kResourceCpu);
  ASSERT_TRUE(a1->try_start());
  // Disjoint resources, same client: held by max_running_per_client.
  auto a2 = queue.submit("a", 0, kResourceAne);
  EXPECT_FALSE(a2->try_start());
  // Another client may use the idle ANE even though the quota-blocked a2
  // is ranked ahead and wants it — quotas never idle a unit cross-tenant.
  auto b1 = queue.submit("b", 0, kResourceAne);
  EXPECT_TRUE(b1->try_start());
  // Global cap of 2 now holds everyone else, even on free resources.
  auto c1 = queue.submit("c", 0, kResourceGpu);
  EXPECT_FALSE(c1->try_start());
  b1.reset();
  EXPECT_TRUE(c1->try_start());
  a1.reset();
  EXPECT_TRUE(a2->try_start());
}

// ------------------------------------------------- multi-tenant service --

/// ostream whose buffer may be read while another thread is writing — the
/// concurrent-session tests poll a session's replies as they stream.
class CapturedStream : public std::ostream {
 public:
  CapturedStream() : std::ostream(&buf_) {}
  std::string text() const { return buf_.text(); }
  bool contains(const std::string& needle) const {
    return text().find(needle) != std::string::npos;
  }

 private:
  class Buf : public std::streambuf {
   public:
    int_type overflow(int_type ch) override {
      if (ch != traits_type::eof()) {
        std::lock_guard lock(mutex_);
        text_.push_back(static_cast<char>(ch));
      }
      return ch;
    }
    std::streamsize xsputn(const char* data, std::streamsize count) override {
      std::lock_guard lock(mutex_);
      text_.append(data, static_cast<std::size_t>(count));
      return count;
    }
    std::string text() const {
      std::lock_guard lock(mutex_);
      return text_;
    }

   private:
    mutable std::mutex mutex_;
    std::string text_;
  } buf_;
};

std::string cpu_block(const std::string& name, const std::string& client,
                      int priority) {
  return "begin " + name + "\nclient " + client + "\npriority " +
         std::to_string(priority) + "\nchips m1\nsme 32 13\nrun\n";
}

std::string ane_block(const std::string& name, const std::string& client) {
  return "begin " + name + "\nclient " + client + "\nchips m1\nane 24\nrun\n";
}

std::vector<std::string> record_lines(const std::string& text) {
  std::vector<std::string> records;
  std::istringstream in(text);
  std::string line;
  while (std::getline(in, line)) {
    if (starts_with(line, "record ")) {
      records.push_back(line);
    }
  }
  std::sort(records.begin(), records.end());
  return records;
}

// The tentpole scenario, made deterministic with a queue ticket standing in
// for a long-running CPU campaign: while the CPU resource class is held, an
// ANE campaign runs to completion (disjoint → concurrent), two CPU
// campaigns queue with live `queued <pos>` events, and on release the
// higher-priority one starts first.
TEST(CampaignServiceQueue, DisjointRunsConcurrentlyConflictsQueueByPriority) {
  CampaignService service({});
  auto blocker =
      service.queue().submit("blocker", 50, kResourceCpu);
  ASSERT_TRUE(blocker->try_start());

  CapturedStream low_out;
  std::istringstream low_in(cpu_block("low", "alice", 0));
  std::thread low_session(
      [&] { service.serve(low_in, low_out); });
  ASSERT_TRUE(wait_until([&] { return low_out.contains("queued 1"); }))
      << low_out.text();

  CapturedStream high_out;
  std::istringstream high_in(cpu_block("high", "bob", 9));
  std::thread high_session(
      [&] { service.serve(high_in, high_out); });
  // The higher-priority campaign takes position 1; the earlier one is
  // pushed back and told so.
  ASSERT_TRUE(wait_until([&] {
    return high_out.contains("queued 1") && low_out.contains("queued 2");
  })) << low_out.text()
      << high_out.text();

  // Disjoint resources: the ANE campaign runs to done while the CPU class
  // is still held — the session joins with the blocker alive.
  CapturedStream ane_out;
  std::istringstream ane_in(ane_block("ane-camp", "carol"));
  std::thread ane_session([&] { service.serve(ane_in, ane_out); });
  ane_session.join();
  EXPECT_TRUE(ane_out.contains("done campaign")) << ane_out.text();
  EXPECT_TRUE(ane_out.contains("started campaign"));
  EXPECT_FALSE(ane_out.contains("queued "));
  EXPECT_TRUE(ane_out.contains("resources ane"));
  EXPECT_EQ(service.queue().running_count(), 1u);  // only the blocker

  blocker.reset();  // the "long CPU campaign" finishes
  low_session.join();
  high_session.join();
  EXPECT_TRUE(low_out.contains("done campaign")) << low_out.text();
  EXPECT_TRUE(high_out.contains("done campaign")) << high_out.text();

  // Start order: ANE first (it never waited), then high before low.
  const auto log = service.start_log();
  ASSERT_EQ(log.size(), 3u);
  EXPECT_EQ(log[0], "ane-camp");
  EXPECT_EQ(log[1], "high");
  EXPECT_EQ(log[2], "low");
}

TEST(CampaignServiceQueue, QuotaViolationGetsStructuredRejection) {
  CampaignService::Config config;
  config.limits.max_queued_per_client = 1;
  CampaignService service(std::move(config));
  auto blocker = service.queue().submit("blocker", 50, kResourceCpu);
  ASSERT_TRUE(blocker->try_start());

  CapturedStream queued_out;
  std::istringstream queued_in(cpu_block("first", "alice", 0));
  std::thread queued_session([&] { service.serve(queued_in, queued_out); });
  ASSERT_TRUE(wait_until(
      [&] { return service.queue().queued_count() == 1; }));

  // Same client, second queued campaign: rejected outright — with the
  // preempted-by-quota event, the stable code and the echoed line — and
  // the session survives to answer the ping.
  CapturedStream rejected_out;
  std::istringstream rejected_in(cpu_block("second", "alice", 0) + "ping\n");
  std::thread rejected_session(
      [&] { service.serve(rejected_in, rejected_out); });
  rejected_session.join();
  EXPECT_TRUE(rejected_out.contains("preempted-by-quota client alice"))
      << rejected_out.text();
  EXPECT_TRUE(rejected_out.contains("error quota-queued"));
  EXPECT_TRUE(rejected_out.contains("| line: run"));
  EXPECT_TRUE(rejected_out.contains("pong"));
  EXPECT_FALSE(rejected_out.contains("done campaign"));

  blocker.reset();
  queued_session.join();
  EXPECT_TRUE(queued_out.contains("done campaign")) << queued_out.text();

  // The stats command reports the rejection and (now empty) queue.
  const auto stats = serve_lines(service, "stats\n");
  ASSERT_FALSE(stats.empty());
  EXPECT_NE(stats.back().find("rejected 1"), std::string::npos)
      << stats.back();
}

TEST(CampaignServiceQueue, ConcurrentDisjointStreamsAreBitIdenticalToSerial) {
  // Two disjoint campaigns on one service, submitted from two sessions at
  // once...
  CampaignService shared({});
  CapturedStream cpu_out;
  CapturedStream ane_out;
  std::istringstream cpu_in(cpu_block("cpu-camp", "alice", 0));
  std::istringstream ane_in(ane_block("ane-camp", "bob"));
  std::thread cpu_session([&] { shared.serve(cpu_in, cpu_out); });
  std::thread ane_session([&] { shared.serve(ane_in, ane_out); });
  cpu_session.join();
  ane_session.join();
  EXPECT_TRUE(cpu_out.contains("done campaign")) << cpu_out.text();
  EXPECT_TRUE(ane_out.contains("done campaign")) << ane_out.text();

  // ...must stream exactly the records a fresh single-campaign service
  // produces (record lines are store entries: hex bit patterns, so string
  // equality is bit equality).
  CampaignService cpu_only({});
  CampaignService ane_only({});
  const auto cpu_serial = serve_lines(cpu_only, cpu_block("cpu-camp", "x", 0));
  const auto ane_serial = serve_lines(ane_only, ane_block("ane-camp", "y"));
  const auto serial_records = [](const std::vector<std::string>& lines) {
    std::vector<std::string> records;
    for (const auto& line : lines) {
      if (starts_with(line, "record ")) {
        records.push_back(line);
      }
    }
    std::sort(records.begin(), records.end());
    return records;
  };
  EXPECT_EQ(record_lines(cpu_out.text()), serial_records(cpu_serial));
  EXPECT_EQ(record_lines(ane_out.text()), serial_records(ane_serial));
  ASSERT_FALSE(record_lines(cpu_out.text()).empty());
  ASSERT_FALSE(record_lines(ane_out.text()).empty());
}

// The `queue` introspection command: waiting campaigns with position,
// name, client, priority and resource mask, terminated by an aggregate
// line — without submitting or disturbing anything.
TEST(CampaignServiceQueue, QueueCommandListsWaitingCampaigns) {
  CampaignService service({});
  auto blocker = service.queue().submit("blocker", 50, kResourceCpu);
  ASSERT_TRUE(blocker->try_start());

  CapturedStream waiting_out;
  std::istringstream waiting_in(cpu_block("waiting-camp", "alice", 3));
  std::thread session([&] { service.serve(waiting_in, waiting_out); });
  ASSERT_TRUE(wait_until([&] { return waiting_out.contains("queued 1"); }))
      << waiting_out.text();

  const auto lines = serve_lines(service, "queue\n");
  ASSERT_EQ(lines.size(), 2u);
  EXPECT_EQ(lines[0],
            "queue-entry 1 name waiting-camp client alice priority 3 "
            "resources cpu");
  EXPECT_EQ(lines[1], "queue waiting 1 running 1");

  blocker.reset();
  session.join();
  EXPECT_TRUE(waiting_out.contains("done campaign")) << waiting_out.text();
  const auto after = serve_lines(service, "queue\n");
  ASSERT_EQ(after.size(), 1u);
  EXPECT_EQ(after[0], "queue waiting 0 running 0");
}

TEST(CampaignService, ErrorRepliesCarryCodeAndOffendingLine) {
  CampaignService service({});
  const auto lines = serve_lines(service,
                                 "warp 9\n"
                                 "begin bad\n"
                                 "chips m1,m9\n"
                                 "run\n"
                                 "shutdown\n");
  ASSERT_GE(lines.size(), 3u);
  // Unknown command: code + the echoed input.
  EXPECT_EQ(lines[0], "error unknown-command unknown command: warp | line: warp 9");
  // Bad setter inside a request: the offending line is echoed verbatim.
  EXPECT_EQ(lines[1],
            "error bad-directive unknown chip: m9 | line: chips m1,m9");
  // `run` on a request with no chips accepted: bad-request.
  EXPECT_TRUE(starts_with(lines[2], "error bad-request")) << lines[2];
  EXPECT_NE(lines[2].find("| line: run"), std::string::npos);
}

TEST(CampaignService, ShardedRunPersistsMergedEntriesToTheServiceStore) {
  const auto dir = temp_dir("persist");
  const std::string store = (dir / "service.aocache").string();
  {
    CampaignService service({/*cache_capacity=*/4096, store, dir.string(),
                             /*worker_binary=*/""});
    const auto lines = serve_lines(service, nine_kind_block(1, 2));
    ASSERT_TRUE(starts_with(lines.back(), "done campaign "));
  }
  // The merged store round-trips into a cold cache in a fresh "process".
  orchestrator::ResultCache cold;
  EXPECT_EQ(cold.load(store), 20u);
  EXPECT_EQ(cold.stats().load_rejected, 0u);
  std::filesystem::remove_all(dir);
}

// ----------------------------------------------------------- observability --

/// A deterministic profiler clock: readings 0, 1, 2, ... shared across
/// every thread of the service.
obs::TimelineProfiler::ClockFn counter_clock() {
  auto ticks = std::make_shared<std::atomic<std::uint64_t>>(0);
  return [ticks] { return ticks->fetch_add(1); };
}

TEST(CampaignService, ProfileCommandReplaysTheCampaignTimeline) {
  const auto dir = temp_dir("profile");
  CampaignService::Config config;
  config.shard_dir = dir.string();
  config.profile_dir = dir.string();
  config.profile_clock = counter_clock();
  CampaignService service(std::move(config));

  const auto lines =
      serve_lines(service, nine_kind_block(2, 1) + "profile\n");
  ASSERT_EQ(count_prefixed(lines, "done campaign "), 1u);

  // The terminal line identifies the replayed campaign and its span count.
  const std::string& terminal = lines.back();
  ASSERT_TRUE(starts_with(terminal, "profile campaign 1 name ninekinds "))
      << terminal;
  std::size_t span_lines = 0;
  std::size_t phase_lines = 0;
  std::map<std::string, std::size_t> phases_seen;
  for (const auto& line : lines) {
    if (starts_with(line, "profile-span ")) {
      ++span_lines;
      // "profile-span <id> <parent> <phase> <start-ns> <dur-ns> <label...>"
      std::istringstream in(line.substr(13));
      std::uint64_t id = 0;
      std::uint64_t parent = 0;
      std::string phase;
      ASSERT_TRUE(in >> id >> parent >> phase) << line;
      EXPECT_TRUE(obs::phase_from_name(phase).has_value()) << line;
      EXPECT_GT(id, parent) << "id order must be topological: " << line;
      ++phases_seen[phase];
    } else if (starts_with(line, "profile-phase ")) {
      ++phase_lines;
    }
  }
  EXPECT_NE(terminal.find("spans " + std::to_string(span_lines)),
            std::string::npos)
      << terminal;
  // The in-process lifecycle: one campaign root, admission + queue-wait +
  // schedule around it, one execute per executed job, serialize per record.
  EXPECT_EQ(phases_seen["campaign"], 1u);
  EXPECT_EQ(phases_seen["admission"], 1u);
  EXPECT_EQ(phases_seen["queue-wait"], 1u);
  EXPECT_GE(phases_seen["schedule"], 1u);
  EXPECT_GE(phases_seen["execute"], 20u);
  EXPECT_GE(phases_seen["serialize"], 20u);
  EXPECT_GE(phase_lines, 5u);

  // The injected counter clock makes the timeline deterministic: replaying
  // it yields byte-identical span lines.
  const auto replay = serve_lines(service, "profile\n");
  std::vector<std::string> first_spans;
  for (const auto& line : lines) {
    if (starts_with(line, "profile-span ")) {
      first_spans.push_back(line);
    }
  }
  std::vector<std::string> replay_spans;
  for (const auto& line : replay) {
    if (starts_with(line, "profile-span ")) {
      replay_spans.push_back(line);
    }
  }
  EXPECT_EQ(first_spans, replay_spans);

  // An unknown campaign name is the explicit none-reply, not an error.
  const auto none = serve_lines(service, "profile nosuch\n");
  ASSERT_EQ(none.size(), 1u);
  EXPECT_EQ(none[0], "profile campaign 0 name - client - spans 0");

  // --profile-dir wrote the per-campaign artifact.
  std::ifstream artifact(dir / "ninekinds-c1.profile.json");
  ASSERT_TRUE(artifact.good());
  std::stringstream content;
  content << artifact.rdbuf();
  EXPECT_NE(content.str().find("\"schema\": \"ao-profile/1\""),
            std::string::npos);
  EXPECT_NE(content.str().find("\"name\": \"ninekinds\""), std::string::npos);
  std::filesystem::remove_all(dir);
}

TEST(CampaignService, StatsCarryLifetimePhaseTotals) {
  CampaignService service({});
  serve_lines(service, nine_kind_block(2, 1));
  const auto stats = serve_lines(service, "stats\n");
  std::map<std::string, std::pair<std::size_t, std::uint64_t>> totals;
  for (const auto& line : stats) {
    if (!starts_with(line, "stats-phase ")) {
      continue;
    }
    // "stats-phase <phase> count <n> total-ns <t>"
    std::istringstream in(line.substr(12));
    std::string phase;
    std::string tag;
    std::size_t count = 0;
    std::uint64_t total_ns = 0;
    ASSERT_TRUE(in >> phase >> tag >> count >> tag >> total_ns) << line;
    totals[phase] = {count, total_ns};
  }
  ASSERT_EQ(totals.count("campaign"), 1u);
  EXPECT_EQ(totals["campaign"].first, 1u);
  ASSERT_EQ(totals.count("execute"), 1u);
  EXPECT_GE(totals["execute"].first, 20u);
  EXPECT_GT(totals["execute"].second, 0u);
  // Phases that never ran (no sharding happened) are not reported.
  EXPECT_EQ(totals.count("transport"), 0u);
  EXPECT_EQ(totals.count("merge"), 0u);
}

TEST(CampaignService, RemoteShardSpansNestTransportUnderShard) {
  const auto dir = temp_dir("profile_remote");
  CampaignService::Config config;
  config.shard_dir = dir.string();
  config.remote_only = true;
  config.remote_wait_ms = 20000;
  config.profile_clock = counter_clock();
  CampaignService service(std::move(config));

  int fds[2];
  ASSERT_EQ(::socketpair(AF_UNIX, SOCK_STREAM, 0, fds), 0);
  std::thread server([&service, fd = fds[0]] {
    SocketStream stream(fd);
    service.serve(stream, stream);
  });
  std::thread worker([fd = fds[1]] {
    SocketStream stream(fd);
    EXPECT_EQ(run_worker_session(stream, stream, "wp"), 0);
  });

  const auto lines = serve_lines(service, nine_kind_block(2, 2));
  ASSERT_TRUE(starts_with(lines.back(), "done campaign ")) << lines.back();

  // The retained timeline: every transport span sits under a shard span,
  // every shard span under the campaign root, and the frame spans under
  // their transport — the acceptance shape of the remote hot path.
  const auto timelines = service.timelines();
  ASSERT_EQ(timelines.size(), 1u);
  std::map<std::uint64_t, const obs::Span*> by_id;
  for (const obs::Span& span : timelines[0].spans) {
    by_id[span.id] = &span;
  }
  std::uint64_t root = 0;
  for (const obs::Span& span : timelines[0].spans) {
    if (span.phase == obs::Phase::kCampaign) {
      root = span.id;
    }
  }
  ASSERT_NE(root, 0u);
  std::size_t transports = 0;
  std::size_t frames = 0;
  std::size_t merges = 0;
  for (const obs::Span& span : timelines[0].spans) {
    if (span.phase == obs::Phase::kTransport) {
      ++transports;
      ASSERT_NE(by_id.count(span.parent), 0u);
      EXPECT_EQ(by_id[span.parent]->phase, obs::Phase::kShard);
      EXPECT_EQ(by_id[by_id[span.parent]->parent]->phase,
                obs::Phase::kCampaign);
    } else if (span.phase == obs::Phase::kFrame) {
      ++frames;
      ASSERT_NE(by_id.count(span.parent), 0u);
      if (span.origin.empty()) {
        // Daemon-side frame work nests under the transport; grafted
        // worker-side frame spans nest inside the worker's own subtree.
        EXPECT_EQ(by_id[span.parent]->phase, obs::Phase::kTransport);
      }
    } else if (span.phase == obs::Phase::kMerge) {
      ++merges;
    }
  }
  EXPECT_EQ(transports, 2u);  // one conversation per shard
  EXPECT_GE(frames, 4u);      // task + records per shard at least
  EXPECT_GE(merges, 2u);      // each shard store folds into the warm cache

  // The distributed part of the timeline: the worker shipped its own
  // execute spans and they graft under a transport (hence shard) ancestor,
  // stamped with the worker's name.
  std::size_t worker_executes = 0;
  for (const obs::Span& span : timelines[0].spans) {
    if (span.origin.empty()) {
      continue;
    }
    EXPECT_EQ(span.origin, "wp");
    bool under_transport = false;
    for (std::uint64_t at = span.parent; at != 0;
         at = by_id.at(at)->parent) {
      if (by_id.at(at)->phase == obs::Phase::kTransport) {
        under_transport = true;
        break;
      }
    }
    EXPECT_TRUE(under_transport);
    if (span.phase == obs::Phase::kExecute) {
      ++worker_executes;
    }
  }
  EXPECT_GE(worker_executes, 2u);  // both shards shipped execute spans

  // The worker credit feed: the single worker ran both shards and its
  // cumulative busy time is visible.
  const auto stats = serve_lines(service, "stats\n");
  bool worker_line_seen = false;
  for (const auto& line : stats) {
    if (!starts_with(line, "stats-worker wp ")) {
      continue;
    }
    worker_line_seen = true;
    // "stats-worker <name> idle|busy shards <n> busy-ns <t>"
    std::istringstream in(line.substr(16));
    std::string state;
    std::string tag;
    std::size_t shards = 0;
    std::uint64_t busy_ns = 0;
    ASSERT_TRUE(in >> state >> tag >> shards >> tag >> busy_ns) << line;
    EXPECT_EQ(shards, 2u);
    EXPECT_GT(busy_ns, 0u);
  }
  EXPECT_TRUE(worker_line_seen);

  serve_lines(service, "shutdown\n");
  server.join();
  worker.join();
  std::filesystem::remove_all(dir);
}

TEST(CampaignService, SkewedWorkerClockYieldsNestedByteStableTimelines) {
  // One scenario run twice from scratch: the daemon's profiler and worker
  // registry share a single counter clock while the remote worker's own
  // clock starts a million ticks ahead. The heartbeat pong carries the
  // worker reading, the midpoint estimate absorbs the skew, and the merged
  // timeline must come out causally nested — and, because every clock is a
  // deterministic counter, byte-identical between the two runs.
  struct RunResult {
    std::vector<std::string> spans;  // "id parent phase start dur origin"
    std::uint64_t rtt_ns = 0;
    std::int64_t clock_offset_ns = 0;
  };
  const auto run_once = [] {
    RunResult result;
    const auto dir = temp_dir("profile_skew");
    auto ticks = std::make_shared<std::atomic<std::uint64_t>>(0);
    CampaignService::Config config;
    config.shard_dir = dir.string();
    config.remote_only = true;
    config.remote_wait_ms = 20000;
    config.heartbeat_interval_ns = 1;  // every pre-lease sweep pings
    config.profile_clock = [ticks] { return ticks->fetch_add(1); };
    config.worker_clock = [ticks] { return ticks->fetch_add(1); };
    CampaignService service(std::move(config));

    int fds[2];
    EXPECT_EQ(::socketpair(AF_UNIX, SOCK_STREAM, 0, fds), 0);
    std::thread server([&service, fd = fds[0]] {
      SocketStream stream(fd);
      service.serve(stream, stream);
    });
    std::thread worker([fd = fds[1]] {
      SocketStream stream(fd);
      WorkerSessionOptions options;
      auto wticks = std::make_shared<std::atomic<std::uint64_t>>(0);
      options.clock = [wticks] { return 1'000'000 + wticks->fetch_add(1); };
      EXPECT_EQ(run_worker_session(stream, stream, "wskew", options), 0);
    });

    // Park the worker fully before the campaign starts, then pin the shared
    // counter: from here on every clock reading happens at a deterministic
    // point (single driver thread, synchronous frame conversation), so the
    // two runs tick in lockstep.
    for (;;) {
      const auto stats = serve_lines(service, "stats\n");
      bool parked = false;
      for (const auto& line : stats) {
        parked = parked || starts_with(line, "stats-worker wskew ");
      }
      if (parked) {
        break;
      }
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
    ticks->store(1000);

    const auto lines = serve_lines(service, nine_kind_block(1, 2));
    EXPECT_TRUE(starts_with(lines.back(), "done campaign ")) << lines.back();

    const auto timelines = service.timelines();
    EXPECT_EQ(timelines.size(), 1u);
    if (timelines.size() == 1) {
      std::map<std::uint64_t, const obs::Span*> by_id;
      for (const obs::Span& span : timelines[0].spans) {
        by_id[span.id] = &span;
      }
      std::size_t worker_spans = 0;
      for (const obs::Span& span : timelines[0].spans) {
        std::ostringstream line;
        line << span.id << ' ' << span.parent << ' '
             << obs::phase_name(span.phase) << ' ' << span.start_ns << ' '
             << span.duration_ns << ' '
             << (span.origin.empty() ? "-" : span.origin);
        result.spans.push_back(line.str());
        if (span.origin.empty()) {
          continue;
        }
        ++worker_spans;
        EXPECT_EQ(span.origin, "wskew");
        // The skewed worker readings came back aligned: each grafted span
        // fits strictly inside its transport ancestor's window, so its
        // daemon-time start is sane and its duration non-negative by
        // construction (it would wrap otherwise).
        const obs::Span* transport = nullptr;
        for (std::uint64_t at = span.parent; at != 0;
             at = by_id.at(at)->parent) {
          if (by_id.at(at)->phase == obs::Phase::kTransport) {
            transport = by_id.at(at);
            break;
          }
        }
        EXPECT_NE(transport, nullptr);
        if (transport == nullptr) {
          continue;
        }
        EXPECT_GE(span.start_ns, transport->start_ns);
        EXPECT_LE(span.start_ns + span.duration_ns,
                  transport->start_ns + transport->duration_ns);
        EXPECT_LT(span.duration_ns, 1'000'000u)
            << "raw worker-clock reading leaked through alignment";
      }
      EXPECT_GE(worker_spans, 2u);
    }

    // The heartbeat estimates surfaced by stats: a counter-clock rtt is a
    // small positive tick count, and the offset estimate sits near the
    // million-tick skew we injected.
    for (const auto& line : serve_lines(service, "stats\n")) {
      if (!starts_with(line, "stats-worker wskew ")) {
        continue;
      }
      std::istringstream in(line.substr(19));
      std::string state;
      std::string tag;
      std::uint64_t ignored = 0;
      in >> state >> tag >> ignored >> tag >> ignored >> tag >> ignored;
      EXPECT_TRUE(static_cast<bool>(in >> tag >> result.rtt_ns)) << line;
      EXPECT_EQ(tag, "rtt-ns") << line;
      EXPECT_TRUE(static_cast<bool>(in >> tag >> result.clock_offset_ns))
          << line;
      EXPECT_EQ(tag, "clock-offset-ns") << line;
    }

    serve_lines(service, "shutdown\n");
    server.join();
    worker.join();
    std::filesystem::remove_all(dir);
    return result;
  };

  const RunResult first = run_once();
  EXPECT_GE(first.rtt_ns, 1u);
  EXPECT_GT(first.clock_offset_ns, 900'000);
  EXPECT_LT(first.clock_offset_ns, 1'100'000);

  const RunResult second = run_once();
  EXPECT_EQ(first.spans, second.spans);
}

TEST(CampaignService, MetricsCommandRendersMonotonicPrometheusText) {
  CampaignService service({});
  const auto scrape = [&service] {
    std::map<std::string, long long> counters;
    std::vector<std::string> lines = serve_lines(service, "metrics\n");
    EXPECT_FALSE(lines.empty());
    EXPECT_EQ(lines.back(), "# EOF");
    bool typed_counter = false;
    bool typed_gauge = false;
    bool typed_histogram = false;
    for (const auto& line : lines) {
      if (starts_with(line, "# TYPE ")) {
        typed_counter = typed_counter ||
                        line.find(" counter") != std::string::npos;
        typed_gauge = typed_gauge || line.find(" gauge") != std::string::npos;
        typed_histogram =
            typed_histogram || line.find(" histogram") != std::string::npos;
        continue;
      }
      if (starts_with(line, "#") || line.empty()) {
        continue;
      }
      // Sample lines are "name[{labels}] value".
      const auto space = line.rfind(' ');
      EXPECT_NE(space, std::string::npos) << line;
      if (space == std::string::npos) {
        continue;
      }
      const std::string name = line.substr(0, space);
      if (name.size() > 6 &&
          name.compare(name.size() - 6, 6, "_total") == 0) {
        counters[name] = std::stoll(line.substr(space + 1));
      }
    }
    EXPECT_TRUE(typed_counter);
    EXPECT_TRUE(typed_gauge);
    EXPECT_TRUE(typed_histogram);
    return counters;
  };

  const auto before = scrape();
  ASSERT_NE(before.count("ao_campaigns_total"), 0u);
  EXPECT_EQ(before.at("ao_campaigns_total"), 0);

  serve_lines(service, nine_kind_block(2, 1));

  const auto after = scrape();
  EXPECT_EQ(after.at("ao_campaigns_total"), 1);
  EXPECT_GE(after.at("ao_jobs_executed_total"), 20);
  // Counters never move backwards between scrapes.
  for (const auto& [name, value] : before) {
    ASSERT_NE(after.count(name), 0u) << name;
    EXPECT_GE(after.at(name), value) << name;
  }

  // The executed campaign fed the per-phase duration histogram.
  const std::string text = [&service] {
    std::string joined;
    for (const auto& line : serve_lines(service, "metrics\n")) {
      joined += line;
      joined += '\n';
    }
    return joined;
  }();
  EXPECT_NE(text.find("ao_phase_duration_ns_bucket{phase=\"execute\","
                      "le=\"+Inf\"} "),
            std::string::npos);
  EXPECT_NE(text.find("ao_phase_duration_ns_count{phase=\"execute\"} "),
            std::string::npos);
}

// ------------------------------------------------- plan cache (service) -----

TEST(Protocol, PlanKeyCoversContentNotIdentityOrScheduling) {
  const CampaignRequest base = full_request();

  // Identity and scheduling fields cannot change the expansion, so requests
  // differing only there intentionally share one compiled plan.
  CampaignRequest scheduling = base;
  scheduling.name = "other-name";
  scheduling.client = "someone-else";
  scheduling.priority = 1;
  scheduling.workers = 7;
  scheduling.shards = 5;
  scheduling.deadline_ms = 9999;
  scheduling.shard_retries = 1;
  EXPECT_EQ(plan_key(base), plan_key(scheduling));

  // Every content field lands in the key verbatim: string inequality is
  // plan inequality, so distinct option sets can never collide.
  CampaignRequest sizes = base;
  sizes.sizes = {32, 64, 128};
  EXPECT_NE(plan_key(base), plan_key(sizes));
  CampaignRequest seed = base;
  seed.matrix_seed = 8;
  EXPECT_NE(plan_key(base), plan_key(seed));
  CampaignRequest chips = base;
  chips.chips = {soc::ChipModel::kM1};
  EXPECT_NE(plan_key(base), plan_key(chips));
}

TEST(CampaignService, PlanCacheHitCampaignStaysBitIdentical) {
  CampaignService service({});
  const auto first = serve_lines(service, nine_kind_block(2, 1));
  ASSERT_TRUE(starts_with(first.back(), "done campaign "));

  // The same workload under a different name, client and priority shares
  // the plan key: the second campaign checks its expansion out of the plan
  // cache instead of recompiling.
  std::string variant = nine_kind_block(2, 1);
  const std::string begin = "begin ninekinds\n";
  variant.replace(variant.find(begin), begin.size(),
                  "begin replayed\nclient replayer\npriority 3\n");
  const auto second = serve_lines(service, variant);
  ASSERT_TRUE(starts_with(second.back(), "done campaign "));
  EXPECT_EQ(count_prefixed(second, "record "), 20u);

  const auto stats = serve_lines(service, "stats\n");
  ASSERT_FALSE(stats.empty());
  EXPECT_NE(stats.back().find("plan-hits 1"), std::string::npos)
      << stats.back();
  EXPECT_NE(stats.back().find("plan-misses 1"), std::string::npos)
      << stats.back();
  EXPECT_NE(stats.back().find("plan-entries 1"), std::string::npos)
      << stats.back();

  // The cache-hit run left exactly the store a cold service builds: plan
  // reuse may never change a single merged bit.
  CampaignService cold({});
  serve_lines(cold, nine_kind_block(2, 1));
  EXPECT_EQ(entries_by_key(service.cache()), entries_by_key(cold.cache()));
}

// -------------------------------------------------------- record batching ---

/// A single-chip SME-only request: six one-job groups, so batch math is
/// exact and the settle order (workers 1) is deterministic.
CampaignRequest sme_only_request() {
  CampaignRequest request;
  request.name = "batching";
  request.chips = {soc::ChipModel::kM1};
  request.sme_sizes = {32, 64, 96, 128, 160, 192};
  request.sme_seed = 13;
  request.workers = 1;
  return request;
}

/// Drives one full worker session over in-memory streams: hello ack, one
/// task covering every group, bye. Returns the worker's reply frames.
std::vector<Frame> session_frames(const CampaignRequest& request,
                                  const WorkerSessionOptions& options) {
  const std::size_t group_count = request.to_campaign().groups().size();
  std::vector<std::size_t> groups(group_count);
  for (std::size_t i = 0; i < group_count; ++i) {
    groups[i] = i;
  }
  std::stringstream in;
  in << "ok worker\n";
  write_frame(in, {kFrameTask, encode_task(request, 0, groups)});
  write_frame(in, {kFrameBye, ""});
  std::stringstream out;
  EXPECT_EQ(run_worker_session(in, out, "batcher", options), 0);
  std::string hello;
  EXPECT_TRUE(std::getline(out, hello));
  EXPECT_EQ(hello, "worker batcher");
  std::vector<Frame> frames;
  std::string error;
  while (const auto frame = read_frame(out, &error)) {
    frames.push_back(*frame);
  }
  EXPECT_EQ(error, "closed");
  return frames;
}

std::vector<std::vector<std::string>> records_frame_lines(
    const std::vector<Frame>& frames) {
  std::vector<std::vector<std::string>> batches;
  for (const auto& frame : frames) {
    if (frame.type != kFrameRecords) {
      continue;
    }
    std::istringstream payload(frame.payload);
    std::vector<std::string> lines;
    std::string line;
    while (std::getline(payload, line)) {
      lines.push_back(line);
    }
    batches.push_back(std::move(lines));
  }
  return batches;
}

TEST(WorkerSession, RecordsCoalesceUpToTheBatchBound) {
  const CampaignRequest request = sme_only_request();
  constexpr std::uint64_t kNever = ~std::uint64_t{0};

  // batch 4, no deadline: six records ship as a full batch of four plus the
  // end-of-shard drain of two.
  WorkerSessionOptions four;
  four.record_batch = 4;
  four.batch_flush_ns = kNever;
  const auto frames = session_frames(request, four);
  const auto batches = records_frame_lines(frames);
  ASSERT_EQ(batches.size(), 2u);
  EXPECT_EQ(batches[0].size(), 4u);
  EXPECT_EQ(batches[1].size(), 2u);

  // Every coalesced line is a complete, digest-checked store entry.
  std::vector<std::string> streamed;
  for (const auto& batch : batches) {
    for (const auto& line : batch) {
      EXPECT_TRUE(orchestrator::parse_store_entry(line).has_value()) << line;
      streamed.push_back(line);
    }
  }
  ASSERT_EQ(streamed.size(), 6u);

  // The conversation still closes with spans (carrying the flush spans)
  // and the authoritative store, which merges to exactly those entries.
  ASSERT_GE(frames.size(), 4u);
  EXPECT_EQ(frames[frames.size() - 2].type, kFrameSpans);
  EXPECT_NE(frames[frames.size() - 2].payload.find("flush"),
            std::string::npos);
  EXPECT_EQ(frames.back().type, kFrameStore);
  orchestrator::ResultCache merged;
  EXPECT_EQ(merged.merge_buffer(frames.back().payload), 6u);

  // An unbounded batch coalesces the whole shard into one frame; the wire
  // bytes are the same lines in the same order, just split differently.
  WorkerSessionOptions unbounded;
  unbounded.record_batch = 1000;
  unbounded.batch_flush_ns = kNever;
  const auto single = records_frame_lines(session_frames(request, unbounded));
  ASSERT_EQ(single.size(), 1u);
  EXPECT_EQ(single[0], streamed);

  // batch 1 restores the historical one-frame-per-record wire shape.
  WorkerSessionOptions per_record;
  per_record.record_batch = 1;
  const auto singles = records_frame_lines(session_frames(request, per_record));
  ASSERT_EQ(singles.size(), 6u);
  std::vector<std::string> flattened;
  for (const auto& batch : singles) {
    ASSERT_EQ(batch.size(), 1u);
    flattened.push_back(batch[0]);
  }
  EXPECT_EQ(flattened, streamed);
}

TEST(WorkerSession, FlushDeadlineShipsPartialBatches) {
  const CampaignRequest request = sme_only_request();
  // A deterministic counter clock: every now() tick advances, so a zero
  // deadline has always elapsed — each settled record flushes immediately
  // even though the batch bound would hold a thousand.
  WorkerSessionOptions options;
  options.clock = counter_clock();
  options.record_batch = 1000;
  options.batch_flush_ns = 0;
  const auto batches = records_frame_lines(session_frames(request, options));
  ASSERT_EQ(batches.size(), 6u);
  for (const auto& batch : batches) {
    EXPECT_EQ(batch.size(), 1u);
  }
}

// The batching analogue of the remote tentpole test: workers coalescing
// aggressively (whole-shard batches) must leave the daemon's merged cache
// bit-identical to the single-process run.
TEST(CampaignService, RemoteBatchedWorkersStayBitIdentical) {
  const auto dir = temp_dir("remote_batched");
  CampaignService::Config config;
  config.shard_dir = dir.string();
  config.remote_only = true;
  config.remote_wait_ms = 20000;
  CampaignService service(std::move(config));

  WorkerSessionOptions batched;
  batched.record_batch = 64;
  batched.batch_flush_ns = ~std::uint64_t{0};

  int pair_a[2];
  int pair_b[2];
  ASSERT_EQ(::socketpair(AF_UNIX, SOCK_STREAM, 0, pair_a), 0);
  ASSERT_EQ(::socketpair(AF_UNIX, SOCK_STREAM, 0, pair_b), 0);
  std::thread serve_a([&service, fd = pair_a[0]] {
    SocketStream stream(fd);
    service.serve(stream, stream);
  });
  std::thread serve_b([&service, fd = pair_b[0]] {
    SocketStream stream(fd);
    service.serve(stream, stream);
  });
  std::thread worker_a([fd = pair_a[1], batched] {
    SocketStream stream(fd);
    EXPECT_EQ(run_worker_session(stream, stream, "ba", batched), 0);
  });
  std::thread worker_b([fd = pair_b[1], batched] {
    SocketStream stream(fd);
    EXPECT_EQ(run_worker_session(stream, stream, "bb", batched), 0);
  });

  const auto lines = serve_lines(service, nine_kind_block(2, 2));
  ASSERT_TRUE(starts_with(lines.back(), "done campaign ")) << lines.back();
  EXPECT_NE(lines.back().find("shards 2 remote 2"), std::string::npos)
      << lines.back();
  // Batching changes frame boundaries, never the streamed record count.
  EXPECT_EQ(count_prefixed(lines, "record "), 20u);

  serve_lines(service, "shutdown\n");
  serve_a.join();
  serve_b.join();
  worker_a.join();
  worker_b.join();

  CampaignService single({});
  serve_lines(single, nine_kind_block(2, 1));
  const auto batched_entries = entries_by_key(service.cache());
  ASSERT_EQ(batched_entries.size(), 20u);
  EXPECT_EQ(batched_entries, entries_by_key(single.cache()));
  std::filesystem::remove_all(dir);
}

// ------------------------------------------------------- query stress ------

/// One complete paged traversal through concurrent sessions: page size 3,
/// resuming from each page's cursor, restarting from scratch whenever a
/// compaction staled the cursor. Returns the concatenated entry payloads;
/// asserts structural consistency (parseable lines, strictly increasing
/// keys) on every page it sees.
std::vector<std::string> stress_traversal(CampaignService& service) {
  for (int attempt = 0; attempt < 64; ++attempt) {
    std::vector<std::string> collected;
    std::optional<orchestrator::CacheKey> previous;
    std::string cursor;
    bool stale = false;
    while (true) {
      const std::string command =
          cursor.empty() ? "query limit 3\n"
                         : "query limit 3 cursor " + cursor + "\n";
      std::string page_cursor;
      bool saw_page = false;
      for (const auto& line : serve_lines(service, command)) {
        if (starts_with(line, "query-record ")) {
          const std::string payload = line.substr(13);
          const auto parsed = orchestrator::parse_store_entry(payload);
          EXPECT_TRUE(parsed.has_value()) << payload;
          if (parsed.has_value()) {
            if (previous.has_value()) {
              // Strictly increasing keys: no duplicate or reordered record
              // can appear inside one traversal, races or not.
              EXPECT_TRUE(
                  orchestrator::cache_key_less(*previous, parsed->first));
            }
            previous = parsed->first;
          }
          collected.push_back(payload);
        } else if (starts_with(line, "query-page ")) {
          saw_page = true;
          const std::size_t at = line.rfind(" cursor ");
          EXPECT_NE(at, std::string::npos) << line;
          if (at == std::string::npos) {
            return {};
          }
          page_cursor = line.substr(at + 8);
        } else if (starts_with(line, "error stale-cursor ")) {
          stale = true;
        } else {
          ADD_FAILURE() << "unexpected reply: " << line;
        }
      }
      if (stale) {
        break;  // restart the traversal against the rewritten store
      }
      EXPECT_TRUE(saw_page);
      if (!saw_page) {
        return {};
      }
      if (page_cursor == "end") {
        return collected;
      }
      cursor = page_cursor;
    }
  }
  ADD_FAILURE() << "no traversal completed in 64 attempts";
  return {};
}

TEST(CampaignService, PagedQueriesRacingInsertsAndCompactionStayConsistent) {
  const auto dir = temp_dir("query_stress");
  CampaignService::Config config;
  config.store_path = (dir / "stress.store").string();
  CampaignService service(config);

  // Seed the store so readers always have pages to walk.
  serve_lines(service,
              "begin seed\nchips m1,m2\nimpls cpu-single\nsizes 16,24\n"
              "repetitions 1\nrun\n");

  std::atomic<bool> writing{true};
  std::thread writer([&service, &writing] {
    const std::size_t sizes[] = {32, 40, 48, 56, 64, 80};
    for (std::size_t round = 0; round < std::size(sizes); ++round) {
      std::ostringstream request;
      request << "begin stress" << round << "\nchips m1,m2,m3\n"
              << "impls cpu-single,cpu-omp\nsizes " << sizes[round]
              << "\nrepetitions 1\nrun\n";
      serve_lines(service, request.str());
      // Rewrite the store under the readers' feet: in-flight cursors must
      // go structurally stale, never serve reclaimed offsets.
      serve_lines(service, "compact\n");
    }
    writing.store(false);
  });

  std::vector<std::thread> readers;
  std::atomic<std::size_t> traversals{0};
  for (int r = 0; r < 2; ++r) {
    readers.emplace_back([&service, &writing, &traversals] {
      while (writing.load()) {
        if (!stress_traversal(service).empty()) {
          traversals.fetch_add(1);
        }
      }
    });
  }
  writer.join();
  for (auto& reader : readers) {
    reader.join();
  }
  EXPECT_GT(traversals.load(), 0u);

  // Post-quiescence: a final paged traversal must equal the brute-force
  // ground truth of the settled store file — newest line per key, in
  // cache_key_less order.
  const auto settled = stress_traversal(service);
  std::ifstream in(config.store_path);
  std::string line;
  std::getline(in, line);  // header
  std::map<std::string, std::pair<orchestrator::CacheKey, std::string>>
      newest;  // serialized key -> (key, newest line)
  while (std::getline(in, line)) {
    const auto parsed = orchestrator::parse_store_entry(line);
    if (parsed.has_value()) {
      std::ostringstream id;
      id << static_cast<int>(parsed->first.kind) << ' '
         << static_cast<int>(parsed->first.chip) << ' '
         << static_cast<int>(parsed->first.impl) << ' ' << parsed->first.n
         << ' ' << parsed->first.payload_fingerprint << ' '
         << parsed->first.options_fingerprint;
      newest[id.str()] = {parsed->first, line};
    }
  }
  std::vector<std::pair<orchestrator::CacheKey, std::string>> ground;
  for (auto& [id, entry] : newest) {
    ground.push_back(std::move(entry));
  }
  std::sort(ground.begin(), ground.end(), [](const auto& a, const auto& b) {
    return orchestrator::cache_key_less(a.first, b.first);
  });
  ASSERT_EQ(settled.size(), ground.size());
  for (std::size_t i = 0; i < settled.size(); ++i) {
    EXPECT_EQ(settled[i], ground[i].second) << "position " << i;
  }

  // The read path left its marks on the service's telemetry surfaces.
  const auto stats = serve_lines(service, "stats\n");
  ASSERT_FALSE(stats.empty());
  const std::string& totals = stats.back();  // the terminal "stats ..." line
  ASSERT_TRUE(starts_with(totals, "stats ")) << totals;
  EXPECT_NE(totals.find(" queries "), std::string::npos) << totals;
  EXPECT_NE(totals.find(" stale-cursors "), std::string::npos) << totals;
  const auto metrics = serve_lines(service, "metrics\n");
  bool queries_counter = false;
  bool query_phase = false;
  for (const auto& sample : metrics) {
    queries_counter |= sample == "# TYPE ao_queries_total counter";
    query_phase |=
        starts_with(sample, "ao_phase_duration_ns_count{phase=\"query\"}");
  }
  EXPECT_TRUE(queries_counter);
  EXPECT_TRUE(query_phase);
  std::filesystem::remove_all(dir);
}

}  // namespace
}  // namespace ao::service
