#include <gtest/gtest.h>

#include <algorithm>
#include <cstdio>
#include <filesystem>
#include <map>
#include <sstream>
#include <string>
#include <vector>

#include "util/error.hpp"

#include "orchestrator/record.hpp"
#include "orchestrator/result_cache.hpp"
#include "service/protocol.hpp"
#include "service/service.hpp"
#include "service/shard_planner.hpp"
#include "service/worker_pool.hpp"

namespace ao::service {
namespace {

using orchestrator::CacheKey;
using orchestrator::JobKind;
using orchestrator::MeasurementRecord;

// ---------------------------------------------------------------- protocol --

CampaignRequest full_request() {
  CampaignRequest request;
  request.name = "everything";
  request.chips = {soc::ChipModel::kM1, soc::ChipModel::kM3};
  request.impls = {soc::GemmImpl::kCpuSingle, soc::GemmImpl::kGpuMps};
  request.sizes = {32, 64};
  request.repetitions = 2;
  request.matrix_seed = 7;
  request.verify_n_max = 64;
  request.functional_n_max = 64;
  request.stream_threads = {1, 2};
  request.stream_repetitions = 3;
  request.stream_elements = 1u << 10;
  request.gpu_stream = true;
  request.gpu_stream_repetitions = 4;
  request.gpu_stream_elements = 1u << 10;
  request.precision_sizes = {24};
  request.precision_seed = 5;
  request.ane_sizes = {32};
  request.ane_functional = true;
  request.fp64emu_sizes = {24};
  request.fp64emu_seed = 11;
  request.sme_sizes = {32};
  request.sme_seed = 13;
  request.power_idle = true;
  request.power_window_seconds = 0.25;
  request.workers = 2;
  request.shards = 2;
  return request;
}

TEST(Protocol, RequestBlockRoundTripsThroughItsTextForm) {
  const CampaignRequest request = full_request();
  std::string error;
  const auto parsed = parse_request_lines(request.to_lines(), &error);
  ASSERT_TRUE(parsed.has_value()) << error;
  EXPECT_TRUE(*parsed == request);
}

TEST(Protocol, CampaignNamesAreFilesystemSafe) {
  EXPECT_TRUE(valid_campaign_name("fig2-sweep_v1.2"));
  EXPECT_FALSE(valid_campaign_name("a/b"));
  EXPECT_FALSE(valid_campaign_name("../../tmp/evil"));
  EXPECT_FALSE(valid_campaign_name(".."));
  EXPECT_FALSE(valid_campaign_name("spaced out"));
  EXPECT_FALSE(valid_campaign_name(std::string(65, 'a')));
  // The name lands in shard-store paths, so begin rejects traversal and
  // leaves no request open.
  RequestBuilder builder;
  EXPECT_TRUE(builder.begin("../evil").has_value());
  EXPECT_FALSE(builder.open());
  EXPECT_FALSE(builder.begin("ok-name").has_value());
}

TEST(Protocol, BuilderRejectsMalformedSetterLines) {
  RequestBuilder builder;
  ASSERT_FALSE(builder.begin("x").has_value());
  EXPECT_TRUE(builder.apply("chips m1,m9").has_value());
  EXPECT_TRUE(builder.apply("impls cpu-quantum").has_value());
  EXPECT_TRUE(builder.apply("sizes banana").has_value());
  EXPECT_TRUE(builder.apply("repetitions 0").has_value());
  EXPECT_TRUE(builder.apply("workers nope").has_value());
  EXPECT_TRUE(builder.apply("frobnicate 3").has_value());
  // The request is still usable after every rejection.
  EXPECT_FALSE(builder.apply("chips m1").has_value());
  EXPECT_FALSE(builder.apply("sme 32").has_value());
  const CampaignRequest request = builder.take();
  EXPECT_TRUE(request.has_work());
}

TEST(Protocol, ImplNamesMatchTheFigureLegends) {
  EXPECT_EQ(gemm_impl_from_string("cpu-single"), soc::GemmImpl::kCpuSingle);
  EXPECT_EQ(gemm_impl_from_string("GPU-MPS"), soc::GemmImpl::kGpuMps);
  EXPECT_EQ(gemm_impl_from_string("gpu-cutlass"), soc::GemmImpl::kGpuCutlass);
  EXPECT_THROW(gemm_impl_from_string("tpu"), util::InvalidArgument);
}

// ----------------------------------------------------------------- session --

std::filesystem::path temp_dir(const std::string& name) {
  const auto dir = std::filesystem::temp_directory_path() / ("ao_svc_" + name);
  std::filesystem::remove_all(dir);
  std::filesystem::create_directories(dir);
  return dir;
}

std::vector<std::string> serve_lines(CampaignService& service,
                                     const std::string& input) {
  std::istringstream in(input);
  std::ostringstream out;
  service.serve(in, out);
  std::vector<std::string> lines;
  std::istringstream reader(out.str());
  std::string line;
  while (std::getline(reader, line)) {
    lines.push_back(line);
  }
  return lines;
}

bool starts_with(const std::string& line, const std::string& prefix) {
  return line.rfind(prefix, 0) == 0;
}

std::size_t count_prefixed(const std::vector<std::string>& lines,
                           const std::string& prefix) {
  std::size_t count = 0;
  for (const auto& line : lines) {
    if (starts_with(line, prefix)) {
      ++count;
    }
  }
  return count;
}

TEST(CampaignService, MalformedRequestsGetErrorRepliesNotACrash) {
  CampaignService service({});
  const auto lines = serve_lines(service,
                                 "warp 9\n"
                                 "run\n"
                                 "begin bad\n"
                                 "chips m1,m9\n"
                                 "sizes x\n"
                                 "begin nested\n"
                                 "run\n"         // no chips accepted -> error
                                 "begin empty\n"
                                 "chips m1\n"
                                 "run\n"         // no work -> error
                                 "ping\n");
  // Every bad line answered with an error; the session survived to the pong.
  EXPECT_GE(count_prefixed(lines, "error "), 6u);
  ASSERT_FALSE(lines.empty());
  EXPECT_EQ(lines.back(), "pong");
  EXPECT_EQ(count_prefixed(lines, "record "), 0u);
}

TEST(CampaignService, UnknownCommandOutsideARequestIsAnError) {
  CampaignService service({});
  const auto lines = serve_lines(service, "chips m1\nshutdown\n");
  ASSERT_EQ(lines.size(), 2u);
  EXPECT_TRUE(starts_with(lines[0], "error "));
  EXPECT_EQ(lines[1], "ok shutdown");
}

/// A small mixed campaign covering every JobKind, sized for test time.
std::string nine_kind_block(std::size_t workers, std::size_t shards) {
  std::ostringstream out;
  out << "begin ninekinds\n"
         "chips m1,m3\n"
         "impls cpu-single,gpu-mps\n"
         "sizes 32\n"
         "repetitions 2\n"
         "stream 1,2 2 1024\n"
         "gpu-stream 2 1024\n"
         "precision 24 5\n"
         "ane 32\n"
         "fp64emu 24 11\n"
         "sme 32 13\n"
         "power 0.25\n"
      << "workers " << workers << "\nshards " << shards << "\nrun\n";
  return out.str();
}

TEST(CampaignService, StreamsRecordsBeforeDoneInDependencyOrder) {
  CampaignService service({});
  const auto lines = serve_lines(service, nine_kind_block(2, 1));

  ASSERT_FALSE(lines.empty());
  EXPECT_TRUE(starts_with(lines.front(), "ok campaign "));
  EXPECT_TRUE(starts_with(lines.back(), "done campaign "));

  // Streamed records arrive incrementally: every record line sits strictly
  // between the ok header and the done trailer, interleaved with monotonic
  // progress lines.
  std::size_t records = 0;
  std::size_t last_progress = 0;
  for (std::size_t i = 1; i + 1 < lines.size(); ++i) {
    if (starts_with(lines[i], "record ")) {
      const auto entry = orchestrator::parse_store_entry(lines[i].substr(7));
      ASSERT_TRUE(entry.has_value()) << lines[i];
      ++records;
      // Dependency order: a GEMM measurement streams only after its verify
      // job settled, so the record already carries the verdict.
      if (entry->first.kind == JobKind::kGemmMeasure) {
        const auto& m =
            std::get<harness::GemmMeasurement>(entry->second);
        EXPECT_TRUE(m.verified)
            << "gemm record streamed before its verification";
      }
    } else if (starts_with(lines[i], "progress ")) {
      std::istringstream in(lines[i].substr(9));
      std::size_t done = 0;
      char slash = 0;
      std::size_t total = 0;
      ASSERT_TRUE(in >> done >> slash >> total);
      EXPECT_GT(done, last_progress);
      last_progress = done;
    }
  }
  // 2 chips x (2 gemm + 2 cpu-stream + 1 gpu-stream + 1 precision + 1 ane +
  // 1 fp64emu + 1 sme + 1 power) = 20 streamed records.
  EXPECT_EQ(records, 20u);
}

TEST(CampaignService, RepeatedCampaignIsServedFromTheWarmCache) {
  CampaignService service({});
  const auto first = serve_lines(service, nine_kind_block(2, 1));
  const auto second = serve_lines(service, nine_kind_block(2, 1));
  ASSERT_TRUE(starts_with(second.back(), "done campaign "));
  // "done campaign <id> records <n> executed <e> hits <h>"
  std::istringstream in(second.back());
  std::string word;
  std::size_t records = 0;
  std::size_t executed = 0;
  std::size_t hits = 0;
  in >> word >> word >> word >> word >> records >> word >> executed >> word >>
      hits;
  EXPECT_EQ(records, 20u);
  EXPECT_EQ(executed, 0u);  // every point came from the warm cache
  EXPECT_EQ(hits, 20u);
  EXPECT_EQ(count_prefixed(second, "record "), 20u);
}

// ------------------------------------------------------------ shard planner --

TEST(ShardPlanner, CoversEveryGroupExactlyOnceAndIsDeterministic) {
  std::string error;
  const auto request =
      parse_request_lines(full_request().to_lines(), &error);
  ASSERT_TRUE(request.has_value()) << error;
  const auto groups = request->to_campaign().groups();
  ASSERT_GT(groups.size(), 4u);

  const ShardPlan plan = plan_shards(groups, 3);
  ASSERT_EQ(plan.shard_count(), 3u);
  std::vector<std::size_t> seen;
  for (const auto& shard : plan.shard_groups) {
    seen.insert(seen.end(), shard.begin(), shard.end());
  }
  std::sort(seen.begin(), seen.end());
  std::vector<std::size_t> expected(groups.size());
  for (std::size_t i = 0; i < groups.size(); ++i) {
    expected[i] = i;
  }
  EXPECT_EQ(seen, expected);

  const ShardPlan again = plan_shards(groups, 3);
  EXPECT_EQ(plan.shard_groups, again.shard_groups);

  // Every shard carries real work and none carries all of it.
  double total = 0.0;
  for (const auto& g : groups) {
    total += estimated_group_cost(g);
  }
  const double heaviest =
      *std::max_element(plan.shard_costs.begin(), plan.shard_costs.end());
  EXPECT_GT(heaviest, 0.0);
  EXPECT_LT(heaviest, total);
}

TEST(ShardPlanner, MoreShardsThanGroupsLeavesTrailingShardsEmpty) {
  orchestrator::Campaign campaign;
  campaign.chips({soc::ChipModel::kM1}).impls({}).sizes({}).sme_gemm({32});
  const auto groups = campaign.groups();
  ASSERT_EQ(groups.size(), 1u);
  const ShardPlan plan = plan_shards(groups, 4);
  std::size_t populated = 0;
  for (const auto& shard : plan.shard_groups) {
    populated += shard.empty() ? 0 : 1;
  }
  EXPECT_EQ(populated, 1u);
}

// ------------------------------------------------------------- sharded run --

std::map<std::uint64_t, std::string> entries_by_key(
    orchestrator::ResultCache& cache) {
  std::map<std::uint64_t, std::string> out;
  for (const auto& [key, record] : cache.entries()) {
    out[key.fingerprint()] = orchestrator::serialize_record(record);
  }
  return out;
}

// The ISSUE's acceptance criterion: a two-worker sharded service run of the
// mixed campaign produces a merged result store equal per CacheKey — bit
// patterns included (serialize_record writes hex bit patterns, so string
// equality IS bit equality) — to the same campaign run single-process.
TEST(CampaignService, TwoWorkerShardedRunMatchesSingleProcessBitForBit) {
  const auto dir = temp_dir("sharded");

  CampaignService sharded({/*cache_capacity=*/4096,
                           /*store_path=*/"",
                           /*shard_dir=*/dir.string(),
                           /*worker_binary=*/""});
  const auto sharded_lines = serve_lines(sharded, nine_kind_block(2, 2));
  ASSERT_TRUE(starts_with(sharded_lines.back(), "done campaign "))
      << sharded_lines.back();
  EXPECT_NE(sharded_lines.back().find("shards 2"), std::string::npos);
  // The client observed streamed records before the campaign finished.
  EXPECT_EQ(count_prefixed(sharded_lines, "record "), 20u);

  CampaignService single({});
  const auto single_lines = serve_lines(single, nine_kind_block(2, 1));
  ASSERT_TRUE(starts_with(single_lines.back(), "done campaign "));

  const auto sharded_entries = entries_by_key(sharded.cache());
  const auto single_entries = entries_by_key(single.cache());
  ASSERT_EQ(sharded_entries.size(), 20u);
  EXPECT_EQ(sharded_entries, single_entries);

  std::filesystem::remove_all(dir);
}

TEST(CampaignService, RepeatedShardedCampaignIsServedFromTheWarmCache) {
  const auto dir = temp_dir("warm_sharded");
  CampaignService service({/*cache_capacity=*/4096, /*store_path=*/"",
                           /*shard_dir=*/dir.string(),
                           /*worker_binary=*/""});
  const auto first = serve_lines(service, nine_kind_block(2, 2));
  ASSERT_TRUE(starts_with(first.back(), "done campaign "));
  // The rerun streams every point from the warm cache: no worker spawns,
  // nothing merges.
  const auto second = serve_lines(service, nine_kind_block(2, 2));
  ASSERT_TRUE(starts_with(second.back(), "done campaign "));
  EXPECT_EQ(count_prefixed(second, "record "), 20u);
  EXPECT_NE(second.back().find("merged 0"), std::string::npos);
  EXPECT_NE(second.back().find("hits 20"), std::string::npos);
  EXPECT_NE(second.back().find("shards 0"), std::string::npos);
  std::filesystem::remove_all(dir);
}

TEST(WorkerPool, ShardFailureIsReportedNotFatal) {
  const auto dir = temp_dir("failure");
  CampaignRequest request;  // no chips: run_shard throws inside the worker
  request.sme_sizes = {32};
  WorkerPool pool;  // in-process mode
  pool.start(request, "", {{0, {0}, (dir / "s0.aocache").string()}});
  const auto outcomes = pool.wait();
  ASSERT_EQ(outcomes.size(), 1u);
  EXPECT_NE(outcomes[0].exit_code, 0);
  EXPECT_FALSE(outcomes[0].error.empty());
  std::filesystem::remove_all(dir);
}

TEST(CampaignService, ShardedRunPersistsMergedEntriesToTheServiceStore) {
  const auto dir = temp_dir("persist");
  const std::string store = (dir / "service.aocache").string();
  {
    CampaignService service({/*cache_capacity=*/4096, store, dir.string(),
                             /*worker_binary=*/""});
    const auto lines = serve_lines(service, nine_kind_block(1, 2));
    ASSERT_TRUE(starts_with(lines.back(), "done campaign "));
  }
  // The merged store round-trips into a cold cache in a fresh "process".
  orchestrator::ResultCache cold;
  EXPECT_EQ(cold.load(store), 20u);
  EXPECT_EQ(cold.stats().load_rejected, 0u);
  std::filesystem::remove_all(dir);
}

}  // namespace
}  // namespace ao::service
