#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <optional>
#include <string>
#include <vector>

#include "orchestrator/result_cache.hpp"
#include "orchestrator/store_index.hpp"

namespace ao::orchestrator {
namespace {

// The secondary index and its resume tokens, exercised directly: ordering,
// paging, generation stamping, and the sub-linear acceptance bound the
// query engine exists for.

std::string temp_store(const std::string& name) {
  const auto path =
      std::filesystem::temp_directory_path() / ("ao_idx_" + name + ".store");
  std::filesystem::remove(path);
  return path.string();
}

/// Deterministic key spread across three record-shape-compatible kinds, all
/// four chips, every impl and a handful of sizes; `payload_fingerprint`
/// keeps every i distinct even where the structured fields collide.
CacheKey key_at(std::size_t i) {
  CacheKey key;
  switch (i % 3) {
    case 0:
      key.kind = JobKind::kGemmMeasure;
      break;
    case 1:
      key.kind = JobKind::kFp64Emulation;
      break;
    default:
      key.kind = JobKind::kSmeGemm;
      break;
  }
  key.chip = soc::kAllChipModels[i % 4];
  key.impl = soc::kAllGemmImpls[i % 6];
  key.n = 16 + (i % 7) * 16;
  key.payload_fingerprint = 1000 + i;
  key.options_fingerprint = 5;
  return key;
}

MeasurementRecord record_for(const CacheKey& key, double salt = 0.0) {
  if (key.kind == JobKind::kFp64Emulation) {
    Fp64EmuRecord r;
    r.chip = key.chip;
    r.n = key.n;
    r.seed = key.payload_fingerprint;
    r.emulated_gflops = 50.0 + salt;
    r.fp32_gflops = 100.0 + salt;
    return r;
  }
  if (key.kind == JobKind::kSmeGemm) {
    SmeRecord r;
    r.chip = key.chip;
    r.n = key.n;
    r.seed = key.payload_fingerprint;
    r.matches_amx = true;
    r.modeled_gflops = 200.0 + salt;
    return r;
  }
  harness::GemmMeasurement m;
  m.n = key.n;
  m.chip = key.chip;
  m.impl = key.impl;
  m.best_gflops = 100.5 + salt;
  m.time_ns.add(1.25e6 + salt);
  return m;
}

// ------------------------------------------------------------ ordering ----

TEST(StoreIndex, CollectPagesInKeyOrderWithExactTotals) {
  StoreIndex index;
  index.reset(1);
  for (std::size_t i = 0; i < 30; ++i) {
    index.add(key_at(i), 100 * i, 90);
  }
  ASSERT_EQ(index.size(), 30u);

  // An empty filter pages the whole index in cache_key_less order.
  QueryFilter all;
  std::optional<CacheKey> after;
  std::vector<StoreIndex::Ref> walked;
  while (true) {
    const auto page = index.collect(all, after, 7);
    EXPECT_EQ(page.matched, 30u - walked.size());
    walked.insert(walked.end(), page.refs.begin(), page.refs.end());
    if (page.exhausted) {
      break;
    }
    ASSERT_FALSE(page.refs.empty());
    after = page.refs.back().key;
  }
  ASSERT_EQ(walked.size(), 30u);
  for (std::size_t i = 1; i < walked.size(); ++i) {
    EXPECT_TRUE(cache_key_less(walked[i - 1].key, walked[i].key))
        << "page walk not strictly increasing at " << i;
  }
  EXPECT_EQ(walked, index.snapshot());
}

TEST(StoreIndex, KindFilterMatchesBruteForceAndLatestOffsetWins) {
  StoreIndex index;
  index.reset(3);
  for (std::size_t i = 0; i < 24; ++i) {
    index.add(key_at(i), 10 * i, 9);
  }
  // A duplicate append shadows the older line.
  index.add(key_at(4), 7777, 42);
  ASSERT_EQ(index.size(), 24u);
  const auto found = index.find(key_at(4));
  ASSERT_TRUE(found.has_value());
  EXPECT_EQ(found->offset, 7777u);
  EXPECT_EQ(found->length, 42u);

  QueryFilter filter;
  filter.kind = JobKind::kSmeGemm;
  filter.n_min = 32;
  const auto page = index.collect(filter, std::nullopt, 100);
  std::size_t expected = 0;
  for (const auto& ref : index.snapshot()) {
    if (filter.matches(ref.key)) {
      ++expected;
    }
  }
  EXPECT_EQ(page.refs.size(), expected);
  EXPECT_EQ(page.matched, expected);
  EXPECT_TRUE(page.exhausted);
  for (const auto& ref : page.refs) {
    EXPECT_EQ(ref.key.kind, JobKind::kSmeGemm);
    EXPECT_GE(ref.key.n, 32u);
  }
}

// -------------------------------------------------------- cursor codec ----

TEST(QueryCursor, RoundTripsAndRejectsEveryMutation) {
  for (std::size_t i = 0; i < 12; ++i) {
    const CacheKey key = key_at(i);
    const std::uint64_t generation = 1 + i * 17;
    const std::string token = encode_query_cursor(generation, key);
    const auto decoded = decode_query_cursor(token);
    ASSERT_TRUE(decoded.has_value()) << token;
    EXPECT_EQ(decoded->generation, generation);
    EXPECT_TRUE(decoded->last == key);

    // Every proper prefix is structurally rejected.
    for (std::size_t len = 0; len < token.size(); ++len) {
      EXPECT_FALSE(decode_query_cursor(token.substr(0, len)).has_value())
          << "prefix of length " << len << " of " << token;
    }
    // So is every single-character corruption (the digest covers the body;
    // a flip inside the digest breaks the digest itself).
    for (std::size_t at = 0; at < token.size(); ++at) {
      std::string mutated = token;
      mutated[at] = mutated[at] == 'z' ? 'y' : 'z';
      if (mutated == token) {
        continue;
      }
      EXPECT_FALSE(decode_query_cursor(mutated).has_value())
          << "flip at " << at << " of " << token;
    }
  }
  EXPECT_FALSE(decode_query_cursor("").has_value());
  EXPECT_FALSE(decode_query_cursor("aof1.0.0.0").has_value());  // wrong magic
}

// ------------------------------------------------------ cache integration --

TEST(ResultCacheQuery, DetachedCacheAnswersNoStore) {
  ResultCache cache;
  cache.insert(key_at(0), record_for(key_at(0)));
  std::string code;
  EXPECT_FALSE(cache.query(QueryFilter{}, 8, "", &code).has_value());
  EXPECT_EQ(code, "no-store");
  EXPECT_EQ(cache.store_generation(), 0u);
}

TEST(ResultCacheQuery, PagesMatchEntriesAndGenerationIsStamped) {
  const std::string path = temp_store("pages");
  ResultCache cache;
  cache.persist_to(path);
  EXPECT_EQ(cache.store_generation(), 1u);
  for (std::size_t i = 0; i < 20; ++i) {
    cache.insert(key_at(i), record_for(key_at(i)));
  }

  std::string code;
  std::string cursor;
  std::vector<std::string> lines;
  while (true) {
    const auto page = cache.query(QueryFilter{}, 6, cursor, &code);
    ASSERT_TRUE(page.has_value()) << code;
    EXPECT_EQ(page->generation, 1u);
    lines.insert(lines.end(), page->lines.begin(), page->lines.end());
    if (page->exhausted) {
      EXPECT_TRUE(page->cursor.empty());
      break;
    }
    cursor = page->cursor;
  }
  ASSERT_EQ(lines.size(), 20u);
  for (const auto& line : lines) {
    const auto parsed = parse_store_entry(line);
    ASSERT_TRUE(parsed.has_value()) << line;
    const auto memory = cache.lookup(parsed->first);
    ASSERT_TRUE(memory.has_value());
    EXPECT_TRUE(*memory == parsed->second);
  }
  std::filesystem::remove(path);
}

TEST(ResultCacheQuery, CompactionInvalidatesInFlightCursorsStructurally) {
  const std::string path = temp_store("compact");
  ResultCache cache;
  cache.persist_to(path);
  for (std::size_t i = 0; i < 12; ++i) {
    cache.insert(key_at(i), record_for(key_at(i)));
  }
  std::string code;
  const auto first = cache.query(QueryFilter{}, 4, "", &code);
  ASSERT_TRUE(first.has_value()) << code;
  ASSERT_FALSE(first->exhausted);
  const std::string cursor = first->cursor;

  const std::uint64_t before = cache.store_generation();
  cache.compact();
  EXPECT_GT(cache.store_generation(), before);

  // The resumed read must fail structurally — never serve bytes at offsets
  // the rewrite reclaimed.
  EXPECT_FALSE(cache.query(QueryFilter{}, 4, cursor, &code).has_value());
  EXPECT_EQ(code, "stale-cursor");

  // A fresh first page works and carries the new generation.
  const auto fresh = cache.query(QueryFilter{}, 4, "", &code);
  ASSERT_TRUE(fresh.has_value()) << code;
  EXPECT_EQ(fresh->generation, cache.store_generation());
  std::filesystem::remove(path);
}

TEST(ResultCacheQuery, FetchEntryServesRetainedAndEvictedKeys) {
  const std::string path = temp_store("fetch");
  ResultCache cache(4);  // tiny LRU: most keys live only in the store
  cache.persist_to(path);
  for (std::size_t i = 0; i < 16; ++i) {
    cache.insert(key_at(i), record_for(key_at(i)));
  }
  for (std::size_t i = 0; i < 16; ++i) {
    const auto line = cache.fetch_entry(key_at(i));
    ASSERT_TRUE(line.has_value()) << "key " << i;
    const auto parsed = parse_store_entry(*line);
    ASSERT_TRUE(parsed.has_value()) << *line;
    EXPECT_TRUE(parsed->first == key_at(i));
  }
  CacheKey missing = key_at(0);
  missing.payload_fingerprint = 999999;
  EXPECT_FALSE(cache.fetch_entry(missing).has_value());
  std::filesystem::remove(path);
}

TEST(ResultCacheQuery, ColdAttachRebuildsTheIndexFromTheFile) {
  const std::string path = temp_store("cold");
  {
    ResultCache writer;
    writer.persist_to(path);
    for (std::size_t i = 0; i < 18; ++i) {
      writer.insert(key_at(i), record_for(key_at(i)));
    }
  }
  ResultCache reader;
  reader.persist_to(path);  // existing file: index scanned up cold
  EXPECT_EQ(reader.size(), 0u);  // persist_to never loads entries to memory
  std::string code;
  const auto page = reader.query(QueryFilter{}, 100, "", &code);
  ASSERT_TRUE(page.has_value()) << code;
  EXPECT_EQ(page->lines.size(), 18u);
  EXPECT_TRUE(page->exhausted);
  for (const auto& line : page->lines) {
    EXPECT_TRUE(parse_store_entry(line).has_value()) << line;
  }
  std::filesystem::remove(path);
}

// ----------------------------------------------------------- acceptance ----

TEST(ResultCacheQuery, PagedQueryOverTenThousandRecordsReadsSubLinearly) {
  const std::string path = temp_store("tenk");
  ResultCache cache(16);  // the store holds 10k lines; memory holds 16
  cache.persist_to(path);
  constexpr std::size_t kStoreSize = 10000;
  for (std::size_t i = 0; i < kStoreSize; ++i) {
    CacheKey key = key_at(i);
    key.payload_fingerprint = 1'000'000 + i;  // all distinct
    cache.insert(key, record_for(key, static_cast<double>(i)));
  }
  ASSERT_EQ(cache.store_entries(), kStoreSize);

  // One page answers with at most `limit` entry reads — the index seeks
  // straight to the matching lines instead of replaying the 10k-line store.
  std::string code;
  const auto page = cache.query(QueryFilter{}, 25, "", &code);
  ASSERT_TRUE(page.has_value()) << code;
  EXPECT_EQ(page->lines.size(), 25u);
  EXPECT_EQ(page->entries_read, 25u);
  EXPECT_LT(page->entries_read, kStoreSize / 100);

  // A selective filter stays bounded by its match count, not the store.
  QueryFilter narrow;
  narrow.kind = JobKind::kSmeGemm;
  narrow.chip = soc::ChipModel::kM3;
  narrow.n_min = narrow.n_max = 48;
  const auto filtered = cache.query(narrow, 4096, "", &code);
  ASSERT_TRUE(filtered.has_value()) << code;
  EXPECT_GT(filtered->lines.size(), 0u);
  EXPECT_EQ(filtered->entries_read, filtered->lines.size());
  EXPECT_LT(filtered->entries_read, kStoreSize / 10);

  // Resuming mid-store is as cheap as the first page.
  const auto resumed =
      cache.query(QueryFilter{}, 25, page->cursor, &code);
  ASSERT_TRUE(resumed.has_value()) << code;
  EXPECT_EQ(resumed->entries_read, 25u);
  std::filesystem::remove(path);
}

}  // namespace
}  // namespace ao::orchestrator
