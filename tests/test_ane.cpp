#include <gtest/gtest.h>

#include <vector>

#include "accelerate/reference_blas.hpp"
#include "ane/neural_engine.hpp"
#include "util/rng.hpp"

namespace ao::ane {
namespace {

TEST(NeuralEngine, SixteenCoresEveryGeneration) {
  for (const auto chip : soc::kAllChipModels) {
    soc::Soc soc(chip);
    NeuralEngine ane(soc);
    EXPECT_EQ(ane.core_count(), 16);
  }
}

TEST(NeuralEngine, ThroughputGrowsAcrossGenerations) {
  double prev = 0.0;
  for (const auto chip : soc::kAllChipModels) {
    soc::Soc soc(chip);
    NeuralEngine ane(soc);
    EXPECT_GT(ane.peak_int8_tops(), prev);
    prev = ane.peak_int8_tops();
  }
  // M4's 38 TOPS headline number.
  soc::Soc m4(soc::ChipModel::kM4);
  EXPECT_DOUBLE_EQ(NeuralEngine(m4).peak_int8_tops(), 38.0);
}

TEST(NeuralEngine, Fp16IsHalfInt8Rate) {
  soc::Soc soc(soc::ChipModel::kM2);
  NeuralEngine ane(soc);
  EXPECT_DOUBLE_EQ(ane.peak_fp16_tflops(), ane.peak_int8_tops() / 2.0);
}

TEST(NeuralEngine, GemmMatchesReferenceAtFp16Accuracy) {
  soc::Soc soc(soc::ChipModel::kM1);
  NeuralEngine ane(soc);
  const std::size_t n = 64;
  std::vector<float> a(n * n);
  std::vector<float> b(n * n);
  std::vector<float> c(n * n);
  util::fill_uniform(std::span<float>(a), 1);
  util::fill_uniform(std::span<float>(b), 2);
  ane.run_gemm_fp16(n, n, n, a.data(), b.data(), c.data());

  std::vector<float> expected(n * n);
  accelerate::reference::sgemm(false, false, n, n, n, 1.0f, a.data(), n,
                               b.data(), n, 0.0f, expected.data(), n);
  // Inputs round through FP16 (~1e-3 relative); dot products of length 64 of
  // [0,1) values stay below ~16 magnitude: allow a proportional bound.
  const float err = accelerate::reference::max_abs_diff(expected.data(),
                                                        c.data(), n, n, n);
  EXPECT_LT(err, 0.05f);
  EXPECT_GT(err, 0.0f);  // FP16 rounding must actually be visible
}

TEST(NeuralEngine, ChargesAneTimeAndPower) {
  soc::Soc soc(soc::ChipModel::kM3);
  NeuralEngine ane(soc);
  const std::size_t n = 32;
  std::vector<float> a(n * n, 0.5f);
  std::vector<float> b(n * n, 0.5f);
  std::vector<float> c(n * n);
  const double ns = ane.run_gemm_fp16(n, n, n, a.data(), b.data(), c.data());
  EXPECT_GT(ns, 0.0);
  ASSERT_FALSE(soc.activity().empty());
  const auto& rec = soc.activity().records().back();
  EXPECT_EQ(rec.unit, soc::ComputeUnit::kNeuralEngine);
  EXPECT_DOUBLE_EQ(rec.watts, ane.active_power_watts());
}

TEST(NeuralEngine, AneBeatsAmxOnFp16Throughput) {
  // Section 2.3: "The Neural Engine delivers higher throughput for matrix
  // operations than AMX but at lower precision."
  for (const auto chip : soc::kAllChipModels) {
    soc::Soc soc(chip);
    NeuralEngine ane(soc);
    const double accelerate_peak =
        soc::gemm_calibration(chip, soc::GemmImpl::kCpuAccelerate).peak_gflops;
    EXPECT_GT(ane.sustained_fp16_gflops(), accelerate_peak) << soc::to_string(chip);
  }
}

// ------------------------------------------------------ CoreML dispatch ----

TEST(CoreMLRuntime, AneChosenWhenAllowedAndCompatible) {
  soc::Soc soc(soc::ChipModel::kM4);
  CoreMLRuntime runtime(soc, ComputeUnits::kAll);
  EXPECT_EQ(runtime.plan_gemm(256, 256, 256), DispatchTarget::kNeuralEngine);
}

TEST(CoreMLRuntime, IncompatibleShapeFallsBackSilently) {
  // Section 2.3: Core ML "does not provide granular control nor guarantees
  // that the Neural Engine is used for execution".
  soc::Soc soc(soc::ChipModel::kM4);
  CoreMLRuntime runtime(soc, ComputeUnits::kAll);
  EXPECT_EQ(runtime.plan_gemm(100, 256, 256), DispatchTarget::kGpu);  // m%16
  EXPECT_EQ(runtime.plan_gemm(256, 256, 32768), DispatchTarget::kGpu);  // k cap
}

TEST(CoreMLRuntime, PreferenceRestrictsPlacement) {
  soc::Soc soc(soc::ChipModel::kM1);
  CoreMLRuntime cpu_only(soc, ComputeUnits::kCpuOnly);
  EXPECT_EQ(cpu_only.plan_gemm(256, 256, 256), DispatchTarget::kCpu);
  CoreMLRuntime cpu_gpu(soc, ComputeUnits::kCpuAndGpu);
  EXPECT_EQ(cpu_gpu.plan_gemm(256, 256, 256), DispatchTarget::kGpu);
  CoreMLRuntime cpu_ane(soc, ComputeUnits::kCpuAndNeuralEngine);
  EXPECT_EQ(cpu_ane.plan_gemm(256, 256, 256), DispatchTarget::kNeuralEngine);
  // ANE-preferring runtime still falls back to CPU for incompatible shapes.
  EXPECT_EQ(cpu_ane.plan_gemm(100, 100, 100), DispatchTarget::kCpu);
}

TEST(CoreMLRuntime, NamesMatchCoreML) {
  EXPECT_EQ(to_string(ComputeUnits::kAll), "MLComputeUnitsAll");
  EXPECT_EQ(to_string(DispatchTarget::kNeuralEngine), "NeuralEngine");
}

}  // namespace
}  // namespace ao::ane
