#include <gtest/gtest.h>

#include "baseline/reference_systems.hpp"
#include "soc/calibration.hpp"

namespace ao::baseline {
namespace {

TEST(Gh200, PaperAnchors) {
  // Section 5.1-5.2 HPC Perspective boxes.
  EXPECT_DOUBLE_EQ(Gh200::kGraceStreamGbs, 310.0);
  EXPECT_DOUBLE_EQ(Gh200::kHopperHbm3StreamGbs, 3700.0);
  EXPECT_DOUBLE_EQ(Gh200::kCudaSgemmTflops, 41.0);
  EXPECT_DOUBLE_EQ(Gh200::kTensorTf32Tflops, 338.0);
}

TEST(Gh200, EfficiencyFractionsMatchPaper) {
  // Grace 81%, HBM3 94%.
  const auto& refs = stream_references();
  ASSERT_GE(refs.size(), 2u);
  EXPECT_NEAR(refs[0].efficiency(), 0.81, 0.01);
  EXPECT_NEAR(refs[1].efficiency(), 0.94, 0.015);
}

TEST(StreamReferences, ContainsAllQuotedSystems) {
  const auto& refs = stream_references();
  ASSERT_EQ(refs.size(), 3u);
  EXPECT_NE(refs[0].system.find("Grace"), std::string::npos);
  EXPECT_NE(refs[1].system.find("Hopper"), std::string::npos);
  EXPECT_NE(refs[2].system.find("MI250X"), std::string::npos);
  EXPECT_DOUBLE_EQ(refs[2].measured_gbs, 28.0);
}

TEST(GemmReferences, TensorCoreCaveatMarked) {
  // "the comparison to Tensor Cores is unfair since these use mixed
  // precision" — the caveat must travel with the data.
  const auto& refs = gemm_references();
  ASSERT_EQ(refs.size(), 3u);
  EXPECT_FALSE(refs[0].mixed_precision_caveat);  // CUDA cores, plain FP32
  EXPECT_TRUE(refs[1].mixed_precision_caveat);   // TF32 tensor cores
  EXPECT_EQ(refs[1].precision, "TF32");
  EXPECT_DOUBLE_EQ(refs[2].measured_tflops, 5.7);  // Xeon Max DGEMM
  EXPECT_EQ(refs[2].precision, "FP64");
}

TEST(EfficiencyReferences, Green500AndGpus) {
  const auto& refs = efficiency_references();
  ASSERT_EQ(refs.size(), 3u);
  EXPECT_DOUBLE_EQ(refs[0].gflops_per_watt, 72.0);   // Green500 #1
  EXPECT_DOUBLE_EQ(refs[1].gflops_per_watt, 700.0);  // A100
  EXPECT_DOUBLE_EQ(refs[2].gflops_per_watt, 510.0);  // RTX 4090
  EXPECT_DOUBLE_EQ(refs[2].power_watts, 174.0);
}

TEST(CrossComparison, Gh200OutclassesMSeriesAsPaperConcludes) {
  // "a state-of-the-art Nvidia GH200 achieves similar efficiencies at two
  // orders of magnitude better performance" (bandwidth, HBM3 vs M-series)
  // and 41 TFLOPS vs 2.9 TFLOPS FP32.
  const double m4_bw = soc::calibration(soc::ChipModel::kM4).stream.cpu_peak_gbs();
  EXPECT_GT(Gh200::kHopperHbm3StreamGbs / m4_bw, 30.0);
  const double m4_mps =
      soc::gemm_calibration(soc::ChipModel::kM4, soc::GemmImpl::kGpuMps)
          .peak_gflops;
  EXPECT_GT(Gh200::kCudaSgemmTflops * 1e3 / m4_mps, 10.0);
}

TEST(CrossComparison, MSeriesEfficiencyBeatsGreen500Number) {
  // "Our lowest measurement ... achieved 200 GFLOPS/Watt" vs Green500's 72 —
  // with the paper's own caveat that powermetrics numbers are estimates.
  for (const auto chip : soc::kAllChipModels) {
    const auto& mps = soc::gemm_calibration(chip, soc::GemmImpl::kGpuMps);
    EXPECT_GT(mps.peak_gflops / mps.power_watts,
              efficiency_references()[0].gflops_per_watt);
  }
}

}  // namespace
}  // namespace ao::baseline
