#include <gtest/gtest.h>

#include <atomic>
#include <cstring>
#include <numeric>
#include <thread>

#include "util/aligned_buffer.hpp"
#include "util/ascii_chart.hpp"
#include "util/csv_writer.hpp"
#include "util/error.hpp"
#include "util/rng.hpp"
#include "util/statistics.hpp"
#include "util/table_printer.hpp"
#include "util/thread_pool.hpp"
#include "util/units.hpp"

namespace ao::util {
namespace {

// ---------------------------------------------------------------- units ----

TEST(Units, BandwidthConversion) {
  // 1e9 bytes in 1e9 ns (1 s) is 1 GB/s.
  EXPECT_DOUBLE_EQ(gb_per_s(1e9, 1e9), 1.0);
  // 100 GB in 1 s.
  EXPECT_DOUBLE_EQ(gb_per_s(100e9, 1e9), 100.0);
}

TEST(Units, GflopsConversion) {
  EXPECT_DOUBLE_EQ(gflops(2e9, 1e9), 2.0);
  EXPECT_DOUBLE_EQ(gflops(1e12, 1e9), 1000.0);  // 1 TFLOP in 1 s
}

TEST(Units, GflopsPerWatt) {
  EXPECT_DOUBLE_EQ(gflops_per_watt(200.0, 1000.0), 200.0);  // 1 W
  EXPECT_DOUBLE_EQ(gflops_per_watt(200.0, 2000.0), 100.0);  // 2 W
  EXPECT_DOUBLE_EQ(gflops_per_watt(200.0, 0.0), 0.0);       // guarded
}

TEST(Units, FormatBytes) {
  EXPECT_EQ(format_bytes(16384), "16 KiB");
  EXPECT_EQ(format_bytes(8ull * kGiB), "8 GiB");
  EXPECT_EQ(format_bytes(100), "100 B");
}

TEST(Units, ApplePageSizeIs16K) { EXPECT_EQ(kApplePageSize, 16384u); }

// ------------------------------------------------------- aligned buffer ----

TEST(AlignedBuffer, AlignsToApplePage) {
  AlignedBuffer buf(100);
  EXPECT_TRUE(AlignedBuffer::is_aligned(buf.data(), kApplePageSize));
  EXPECT_EQ(buf.length(), 100u);
  EXPECT_EQ(buf.capacity(), kApplePageSize);
}

TEST(AlignedBuffer, RoundsUpToWholePages) {
  AlignedBuffer buf(kApplePageSize + 1);
  EXPECT_EQ(buf.capacity(), 2 * kApplePageSize);
  AlignedBuffer exact(3 * kApplePageSize);
  EXPECT_EQ(exact.capacity(), 3 * kApplePageSize);
}

TEST(AlignedBuffer, ZeroInitialized) {
  AlignedBuffer buf(4096);
  const auto span = buf.as_span<std::uint8_t>();
  for (const auto byte : span) {
    ASSERT_EQ(byte, 0u);
  }
}

TEST(AlignedBuffer, MoveTransfersOwnership) {
  AlignedBuffer a(1000);
  void* ptr = a.data();
  AlignedBuffer b = std::move(a);
  EXPECT_EQ(b.data(), ptr);
  EXPECT_TRUE(a.empty());
  EXPECT_EQ(a.length(), 0u);
}

TEST(AlignedBuffer, RejectsZeroLength) {
  EXPECT_THROW(AlignedBuffer(0), InvalidArgument);
}

TEST(AlignedBuffer, RejectsNonPowerOfTwoAlignment) {
  EXPECT_THROW(AlignedBuffer(100, 3000), InvalidArgument);
}

TEST(AlignedBuffer, TypedSpanCoversRequestedLength) {
  AlignedBuffer buf(256 * sizeof(float));
  EXPECT_EQ(buf.as_span<float>().size(), 256u);
}

// --------------------------------------------------------------- rng -------

TEST(Rng, DeterministicForSameSeed) {
  Xoshiro256 a(123);
  Xoshiro256 b(123);
  for (int i = 0; i < 100; ++i) {
    ASSERT_EQ(a.next(), b.next());
  }
}

TEST(Rng, DifferentSeedsDiverge) {
  Xoshiro256 a(1);
  Xoshiro256 b(2);
  EXPECT_NE(a.next(), b.next());
}

TEST(Rng, FloatsInUnitInterval) {
  Xoshiro256 rng(7);
  for (int i = 0; i < 10000; ++i) {
    const float v = rng.next_float();
    ASSERT_GE(v, 0.0f);
    ASSERT_LT(v, 1.0f);
  }
}

TEST(Rng, UniformMeanNearHalf) {
  std::vector<float> data(100000);
  fill_uniform(std::span<float>(data), 99);
  const double mean =
      std::accumulate(data.begin(), data.end(), 0.0) / data.size();
  EXPECT_NEAR(mean, 0.5, 0.01);
}

TEST(Rng, FillValueSetsEveryElement) {
  std::vector<float> data(1000, -1.0f);
  fill_value(std::span<float>(data), 3.5f);
  for (const float v : data) {
    ASSERT_EQ(v, 3.5f);
  }
}

// --------------------------------------------------------- statistics ------

TEST(RunningStats, KnownSequence) {
  RunningStats s;
  for (const double v : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) {
    s.add(v);
  }
  EXPECT_EQ(s.count(), 8u);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  EXPECT_DOUBLE_EQ(s.variance(), 4.0);
  EXPECT_DOUBLE_EQ(s.stddev(), 2.0);
  EXPECT_DOUBLE_EQ(s.min(), 2.0);
  EXPECT_DOUBLE_EQ(s.max(), 9.0);
}

TEST(RunningStats, MergeMatchesCombined) {
  RunningStats a;
  RunningStats b;
  RunningStats all;
  for (int i = 0; i < 50; ++i) {
    const double v = i * 0.37;
    (i % 2 == 0 ? a : b).add(v);
    all.add(v);
  }
  a.merge(b);
  EXPECT_EQ(a.count(), all.count());
  EXPECT_NEAR(a.mean(), all.mean(), 1e-12);
  EXPECT_NEAR(a.variance(), all.variance(), 1e-9);
  EXPECT_DOUBLE_EQ(a.min(), all.min());
  EXPECT_DOUBLE_EQ(a.max(), all.max());
}

TEST(RunningStats, EmptyThrows) {
  RunningStats s;
  EXPECT_THROW(s.mean(), InvalidArgument);
  EXPECT_THROW(s.min(), InvalidArgument);
}

TEST(SampleSet, OrderStatistics) {
  SampleSet s;
  for (const double v : {5.0, 1.0, 3.0, 2.0, 4.0}) {
    s.add(v);
  }
  EXPECT_DOUBLE_EQ(s.min(), 1.0);
  EXPECT_DOUBLE_EQ(s.max(), 5.0);
  EXPECT_DOUBLE_EQ(s.median(), 3.0);
  EXPECT_DOUBLE_EQ(s.mean(), 3.0);
  EXPECT_DOUBLE_EQ(s.percentile(0), 1.0);
  EXPECT_DOUBLE_EQ(s.percentile(100), 5.0);
  EXPECT_DOUBLE_EQ(s.percentile(25), 2.0);
}

TEST(SampleSet, PercentileInterpolates) {
  SampleSet s;
  s.add(0.0);
  s.add(10.0);
  EXPECT_DOUBLE_EQ(s.percentile(50), 5.0);
  EXPECT_DOUBLE_EQ(s.percentile(75), 7.5);
}

TEST(SampleSet, RejectsBadPercentile) {
  SampleSet s;
  s.add(1.0);
  EXPECT_THROW(s.percentile(-1), InvalidArgument);
  EXPECT_THROW(s.percentile(101), InvalidArgument);
}

// --------------------------------------------------------------- csv -------

TEST(Csv, EscapesSpecialCharacters) {
  EXPECT_EQ(CsvWriter::escape("plain"), "plain");
  EXPECT_EQ(CsvWriter::escape("a,b"), "\"a,b\"");
  EXPECT_EQ(CsvWriter::escape("say \"hi\""), "\"say \"\"hi\"\"\"");
}

TEST(Csv, RoundTrip) {
  CsvWriter csv({"name", "value", "note"});
  csv.add_row({"alpha", "1.5", "has,comma"});
  csv.add_row({"beta", "2.0", "has \"quotes\""});
  const auto rows = parse_csv(csv.to_string());
  ASSERT_EQ(rows.size(), 3u);
  EXPECT_EQ(rows[0], (std::vector<std::string>{"name", "value", "note"}));
  EXPECT_EQ(rows[1][2], "has,comma");
  EXPECT_EQ(rows[2][2], "has \"quotes\"");
}

TEST(Csv, NumericRowHelper) {
  CsvWriter csv({"k", "a", "b"});
  csv.add_row("row", {1.25, 2.5}, 2);
  const auto rows = parse_csv(csv.to_string());
  EXPECT_EQ(rows[1], (std::vector<std::string>{"row", "1.25", "2.50"}));
}

TEST(Csv, ArityMismatchThrows) {
  CsvWriter csv({"a", "b"});
  EXPECT_THROW(csv.add_row({"only-one"}), InvalidArgument);
}

// ------------------------------------------------------- table printer -----

TEST(TablePrinter, RendersHeaderAndRows) {
  TablePrinter t({"Feature", "M1", "M4"});
  t.add_row({"Cores", "8", "10"});
  const std::string out = t.to_string("Title");
  EXPECT_NE(out.find("Title"), std::string::npos);
  EXPECT_NE(out.find("Feature"), std::string::npos);
  EXPECT_NE(out.find("Cores"), std::string::npos);
  EXPECT_NE(out.find("10"), std::string::npos);
}

TEST(TablePrinter, ArityEnforced) {
  TablePrinter t({"a", "b"});
  EXPECT_THROW(t.add_row({"1"}), InvalidArgument);
}

TEST(TablePrinter, ColumnsAlign) {
  TablePrinter t({"x", "value"});
  t.add_row({"short", "1"});
  t.add_row({"a-much-longer-label", "22"});
  const std::string out = t.to_string();
  // All lines between rules must have equal length.
  std::size_t expected = 0;
  std::istringstream iss(out);
  std::string line;
  while (std::getline(iss, line)) {
    if (expected == 0) {
      expected = line.size();
    }
    EXPECT_EQ(line.size(), expected);
  }
}

// ----------------------------------------------------------- charts --------

TEST(BarChart, RendersBarsAndReference) {
  BarChart chart("Bandwidth", "GB/s");
  chart.set_reference_line(100.0, "theoretical");
  chart.add_group("M1");
  chart.add_bar("Copy", 55.0);
  chart.add_bar("Triad", 59.0);
  const std::string out = chart.render(40);
  EXPECT_NE(out.find("Copy"), std::string::npos);
  EXPECT_NE(out.find('#'), std::string::npos);
  EXPECT_NE(out.find('|'), std::string::npos);
  EXPECT_NE(out.find("59.0"), std::string::npos);
}

TEST(BarChart, BarBeforeGroupThrows) {
  BarChart chart("x", "u");
  EXPECT_THROW(chart.add_bar("oops", 1.0), InvalidArgument);
}

TEST(LinePlot, RendersLogLogSeries) {
  LinePlot plot("GFLOPS", "n", "GFLOPS");
  plot.set_log_x(true);
  plot.set_log_y(true);
  plot.add_series("mps", 'm', {256, 1024, 4096, 16384}, {10, 300, 2000, 2900});
  const std::string out = plot.render(60, 15);
  EXPECT_NE(out.find('m'), std::string::npos);
  EXPECT_NE(out.find("legend"), std::string::npos);
}

TEST(LinePlot, MismatchedSeriesThrows) {
  LinePlot plot("t", "x", "y");
  EXPECT_THROW(plot.add_series("s", 's', {1, 2}, {1}), InvalidArgument);
}

TEST(LinePlot, EmptyPlotDoesNotCrash) {
  LinePlot plot("t", "x", "y");
  EXPECT_NE(plot.render().find("no data"), std::string::npos);
}

// -------------------------------------------------------- thread pool ------

TEST(ThreadPool, ParallelForCoversEveryIndexOnce) {
  ThreadPool pool(4);
  std::vector<std::atomic<int>> hits(1000);
  pool.parallel_for(hits.size(), [&](std::size_t i) { hits[i].fetch_add(1); });
  for (const auto& h : hits) {
    ASSERT_EQ(h.load(), 1);
  }
}

TEST(ThreadPool, SubmitAndWaitIdle) {
  ThreadPool pool(2);
  std::atomic<int> counter{0};
  for (int i = 0; i < 64; ++i) {
    pool.submit([&counter] { counter.fetch_add(1); });
  }
  pool.wait_idle();
  EXPECT_EQ(counter.load(), 64);
}

TEST(ThreadPool, ParallelForZeroCountIsNoop) {
  ThreadPool pool(2);
  pool.parallel_for(0, [](std::size_t) { FAIL() << "must not be called"; });
}

TEST(ThreadPool, RunsConcurrently) {
  ThreadPool pool(4);
  std::atomic<int> active{0};
  std::atomic<int> peak{0};
  pool.parallel_for(8, [&](std::size_t) {
    const int now = active.fetch_add(1) + 1;
    int expected = peak.load();
    while (now > expected && !peak.compare_exchange_weak(expected, now)) {
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
    active.fetch_sub(1);
  });
  EXPECT_GE(peak.load(), 2) << "workers never overlapped";
}

TEST(ThreadPool, GlobalPoolIsSingleton) {
  EXPECT_EQ(&global_pool(), &global_pool());
  EXPECT_GE(global_pool().worker_count(), 1u);
}

TEST(ThreadPool, ShutdownDrainsQueuedTasks) {
  std::atomic<int> counter{0};
  {
    ThreadPool pool(2);
    // Tasks that submit more tasks: the nested work must also survive the
    // drain, since in_flight_ stays positive until the whole chain ran.
    for (int i = 0; i < 32; ++i) {
      pool.submit([&counter, &pool] {
        counter.fetch_add(1);
        pool.submit([&counter] { counter.fetch_add(1); });
      });
    }
  }  // destructor = shutdown(): deterministic drain
  EXPECT_EQ(counter.load(), 64);
}

TEST(ThreadPool, ShutdownIsIdempotentAndSubmitAfterThrows) {
  ThreadPool pool(2);
  std::atomic<int> counter{0};
  pool.submit([&counter] { counter.fetch_add(1); });
  pool.shutdown();
  pool.shutdown();  // second call is a no-op
  EXPECT_EQ(counter.load(), 1);
  EXPECT_THROW(pool.submit([] {}), InvalidArgument);
}

TEST(ThreadPool, ConcurrentParallelForCallersDoNotCrossWait) {
  // Two threads issue parallel_for on the same pool; per-call latches mean
  // both complete with each caller seeing exactly its own index space.
  ThreadPool pool(4);
  std::atomic<int> a{0};
  std::atomic<int> b{0};
  std::thread ta([&] {
    for (int round = 0; round < 50; ++round) {
      pool.parallel_for(16, [&](std::size_t) { a.fetch_add(1); });
    }
  });
  std::thread tb([&] {
    for (int round = 0; round < 50; ++round) {
      pool.parallel_for(16, [&](std::size_t) { b.fetch_add(1); });
    }
  });
  ta.join();
  tb.join();
  EXPECT_EQ(a.load(), 50 * 16);
  EXPECT_EQ(b.load(), 50 * 16);
}

}  // namespace
}  // namespace ao::util
