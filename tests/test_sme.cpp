#include <gtest/gtest.h>

#include <vector>

#include "accelerate/reference_blas.hpp"
#include "amx/amx_gemm.hpp"
#include "amx/amx_unit.hpp"
#include "amx/sme_engine.hpp"
#include "util/error.hpp"
#include "util/rng.hpp"

namespace ao::amx {
namespace {

// -------------------------------------------------------- state machine ----

TEST(SmeEngine, RequiresStreamingMode) {
  SmeEngine sme;
  float data[16] = {};
  EXPECT_THROW(sme.ld1w(0, data), util::StateError);
  EXPECT_THROW(sme.fmopa(0, 0, 1), util::StateError);
  EXPECT_THROW(sme.zero_za(0), util::StateError);
  sme.smstart();
  EXPECT_TRUE(sme.streaming());
  EXPECT_NO_THROW(sme.ld1w(0, data));
  sme.smstop();
  EXPECT_FALSE(sme.streaming());
  EXPECT_THROW(sme.ld1w(0, data), util::StateError);
}

TEST(SmeEngine, GeometryMatchesM4Svl) {
  // SVL = 512 bits -> 16 FP32 lanes, four ZA FP32 tiles.
  EXPECT_EQ(SmeEngine::kSvlBits, 512u);
  EXPECT_EQ(SmeEngine::kLanesF32, 16u);
  EXPECT_EQ(SmeEngine::kZaTilesF32, 4u);
  EXPECT_EQ(SmeEngine::kZRegs, 32u);
}

TEST(SmeEngine, PredicatedLoadZeroesInactiveLanes) {
  SmeEngine sme;
  sme.smstart();
  float data[16];
  for (int i = 0; i < 16; ++i) {
    data[i] = static_cast<float>(i + 1);
  }
  sme.ld1w(5, data, /*active=*/3);  // whilelt p0.s, #0, #3
  const auto z = sme.z_reg(5);
  EXPECT_EQ(z[0], 1.0f);
  EXPECT_EQ(z[2], 3.0f);
  EXPECT_EQ(z[3], 0.0f);
  EXPECT_EQ(z[15], 0.0f);
}

TEST(SmeEngine, BoundsChecked) {
  SmeEngine sme;
  sme.smstart();
  float data[16] = {};
  EXPECT_THROW(sme.ld1w(32, data), util::InvalidArgument);
  EXPECT_THROW(sme.fmopa(4, 0, 1), util::InvalidArgument);
  EXPECT_THROW(sme.ld1w(0, data, 17), util::InvalidArgument);
  EXPECT_THROW(sme.st1w_row(0, 16, data), util::InvalidArgument);
}

// ------------------------------------------------------------ fmopa --------

TEST(SmeEngine, FmopaIsSumOfOuterProducts) {
  SmeEngine sme;
  sme.smstart();
  float zn[16];
  float zm[16];
  for (int i = 0; i < 16; ++i) {
    zn[i] = static_cast<float>(i + 1);
    zm[i] = static_cast<float>(2 * i);
  }
  sme.ld1w(0, zn);
  sme.ld1w(1, zm);
  sme.zero_za(2);
  sme.fmopa(2, 0, 1);
  sme.fmopa(2, 0, 1);  // accumulate twice
  for (int r = 0; r < 16; ++r) {
    for (int c = 0; c < 16; ++c) {
      ASSERT_EQ(sme.za_at(2, r, c), 2.0f * zn[r] * zm[c]);
    }
  }
  EXPECT_EQ(sme.mac_count(), 512u);
}

TEST(SmeEngine, PredicatedFmopaLeavesTailUntouched) {
  SmeEngine sme;
  sme.smstart();
  float ones[16];
  std::fill(ones, ones + 16, 1.0f);
  sme.ld1w(0, ones);
  sme.ld1w(1, ones);
  sme.fmopa(0, 0, 1, /*rows_active=*/2, /*cols_active=*/3);
  EXPECT_EQ(sme.za_at(0, 1, 2), 1.0f);
  EXPECT_EQ(sme.za_at(0, 2, 0), 0.0f);  // beyond row predicate
  EXPECT_EQ(sme.za_at(0, 0, 3), 0.0f);  // beyond col predicate
}

TEST(SmeEngine, TilesAreIndependent) {
  SmeEngine sme;
  sme.smstart();
  float ones[16];
  std::fill(ones, ones + 16, 1.0f);
  sme.ld1w(0, ones);
  sme.ld1w(1, ones);
  sme.fmopa(0, 0, 1);
  sme.fmopa(3, 0, 1);
  sme.fmopa(3, 0, 1);
  EXPECT_EQ(sme.za_at(0, 0, 0), 1.0f);
  EXPECT_EQ(sme.za_at(3, 0, 0), 2.0f);
  EXPECT_EQ(sme.za_at(1, 0, 0), 0.0f);
}

// ------------------------------------------------------------ sgemm --------

TEST(SmeGemm, MatchesReference) {
  for (const std::size_t n : {16u, 48u, 100u}) {
    std::vector<float> a(n * n);
    std::vector<float> b(n * n);
    std::vector<float> c(n * n, -5.0f);
    std::vector<float> expected(n * n);
    util::fill_uniform(std::span<float>(a), 61 + n);
    util::fill_uniform(std::span<float>(b), 62 + n);
    sme_sgemm(n, n, n, a.data(), n, b.data(), n, c.data(), n);
    accelerate::reference::sgemm(false, false, n, n, n, 1.0f, a.data(), n,
                                 b.data(), n, 0.0f, expected.data(), n);
    EXPECT_LE(accelerate::reference::max_abs_diff(expected.data(), c.data(), n,
                                                  n, n),
              accelerate::reference::gemm_tolerance(n))
        << "n=" << n;
  }
}

TEST(SmeGemm, BitIdenticalToAmx) {
  // The paper cites [17]: SME on M4 "is fairly similar to the AMX unit at
  // its core". In this model both engines perform the same 16-wide FP32
  // outer-product accumulation in the same order, so their SGEMM results
  // must agree bit-for-bit.
  const std::size_t n = 80;
  std::vector<float> a(n * n);
  std::vector<float> b(n * n);
  util::fill_uniform(std::span<float>(a), 71);
  util::fill_uniform(std::span<float>(b), 72);
  std::vector<float> via_sme(n * n, 0.0f);
  std::vector<float> via_amx(n * n, 0.0f);
  sme_sgemm(n, n, n, a.data(), n, b.data(), n, via_sme.data(), n);
  amx_sgemm(n, n, n, 1.0f, a.data(), n, b.data(), n, 0.0f, via_amx.data(), n,
            /*threads=*/1);
  for (std::size_t i = 0; i < n * n; ++i) {
    ASSERT_EQ(via_sme[i], via_amx[i]) << "element " << i;
  }
}

TEST(SmeGemm, OuterProductEquivalenceWithAmxUnit) {
  // One fmopa against one fma32: same 16x16 rank-1 update.
  float x[16];
  float y[16];
  for (int i = 0; i < 16; ++i) {
    x[i] = 0.25f * static_cast<float>(i + 1);
    y[i] = 1.5f - 0.1f * static_cast<float>(i);
  }

  SmeEngine sme;
  sme.smstart();
  sme.ld1w(0, y);  // rows
  sme.ld1w(1, x);  // cols
  sme.fmopa(0, 0, 1);

  AmxUnit amx;
  amx.set();
  amx.ldx(0, x);
  amx.ldy(0, y);
  amx.fma32(0, 0);

  for (int r = 0; r < 16; ++r) {
    const auto z = amx.z_row_f32(static_cast<std::size_t>(r) * 4);
    for (int c = 0; c < 16; ++c) {
      ASSERT_EQ(sme.za_at(0, r, c), z[c]) << "r=" << r << " c=" << c;
    }
  }
}

TEST(SmeGemm, RejectsBadOperands) {
  std::vector<float> buf(64);
  EXPECT_THROW(
      sme_sgemm(4, 4, 4, nullptr, 4, buf.data(), 4, buf.data(), 4),
      util::InvalidArgument);
  EXPECT_THROW(sme_sgemm(4, 4, 8, buf.data(), 4 /* < k */, buf.data(), 8,
                         buf.data(), 4),
               util::InvalidArgument);
}

}  // namespace
}  // namespace ao::amx
