#include <gtest/gtest.h>

#include <cmath>
#include <numeric>
#include <vector>

#include "accelerate/reference_blas.hpp"
#include "simd/neon.hpp"
#include "simd/neon_kernels.hpp"
#include "util/rng.hpp"

namespace ao::simd {
namespace {

// -------------------------------------------------------- intrinsics -------

TEST(NeonIntrinsics, LoadStoreRoundTrip) {
  const float in[4] = {1.0f, -2.0f, 3.5f, 0.25f};
  float out[4] = {};
  vst1q_f32(out, vld1q_f32(in));
  for (int i = 0; i < 4; ++i) {
    EXPECT_EQ(out[i], in[i]);
  }
}

TEST(NeonIntrinsics, BroadcastAndLanes) {
  float32x4_t v = vdupq_n_f32(7.0f);
  EXPECT_EQ(vgetq_lane_f32(v, 0), 7.0f);
  EXPECT_EQ(vgetq_lane_f32(v, 3), 7.0f);
  v = vsetq_lane_f32(-1.0f, v, 2);
  EXPECT_EQ(vgetq_lane_f32(v, 2), -1.0f);
  EXPECT_EQ(vgetq_lane_f32(v, 1), 7.0f);
}

TEST(NeonIntrinsics, Arithmetic) {
  const float32x4_t a = {{1, 2, 3, 4}};
  const float32x4_t b = {{10, 20, 30, 40}};
  EXPECT_EQ(vgetq_lane_f32(vaddq_f32(a, b), 2), 33.0f);
  EXPECT_EQ(vgetq_lane_f32(vsubq_f32(b, a), 3), 36.0f);
  EXPECT_EQ(vgetq_lane_f32(vmulq_f32(a, b), 1), 40.0f);
  EXPECT_EQ(vgetq_lane_f32(vmulq_n_f32(a, 3.0f), 3), 12.0f);
}

TEST(NeonIntrinsics, FusedMultiplyAdd) {
  const float32x4_t acc = {{1, 1, 1, 1}};
  const float32x4_t x = {{2, 3, 4, 5}};
  const float32x4_t y = {{10, 10, 10, 10}};
  const float32x4_t r = vfmaq_f32(acc, x, y);  // acc + x*y
  EXPECT_EQ(vgetq_lane_f32(r, 0), 21.0f);
  EXPECT_EQ(vgetq_lane_f32(r, 3), 51.0f);
  const float32x4_t rn = vfmaq_n_f32(acc, x, 2.0f);
  EXPECT_EQ(vgetq_lane_f32(rn, 2), 9.0f);
}

TEST(NeonIntrinsics, MinMaxNegAbs) {
  const float32x4_t a = {{-1, 2, -3, 4}};
  const float32x4_t b = {{1, -2, 3, -4}};
  EXPECT_EQ(vgetq_lane_f32(vmaxq_f32(a, b), 0), 1.0f);
  EXPECT_EQ(vgetq_lane_f32(vminq_f32(a, b), 1), -2.0f);
  EXPECT_EQ(vgetq_lane_f32(vnegq_f32(a), 0), 1.0f);
  EXPECT_EQ(vgetq_lane_f32(vabsq_f32(a), 2), 3.0f);
}

TEST(NeonIntrinsics, HorizontalReductions) {
  const float32x4_t a = {{1, 2, 3, 4}};
  EXPECT_EQ(vaddvq_f32(a), 10.0f);
  EXPECT_EQ(vmaxvq_f32(a), 4.0f);
}

// ----------------------------------------------------------- kernels -------

class NeonKernelTest : public ::testing::TestWithParam<std::size_t> {};

TEST_P(NeonKernelTest, StreamKernelsMatchScalar) {
  const std::size_t n = GetParam();
  std::vector<float> a(n);
  std::vector<float> b(n);
  std::vector<float> c(n);
  util::fill_uniform(std::span<float>(a), 1);
  util::fill_uniform(std::span<float>(b), 2);
  util::fill_uniform(std::span<float>(c), 3);

  std::vector<float> out(n);
  neon_copy(a.data(), out.data(), n);
  EXPECT_EQ(out, a);

  neon_scale(out.data(), c.data(), 3.0f, n);
  for (std::size_t i = 0; i < n; ++i) {
    ASSERT_EQ(out[i], 3.0f * c[i]);
  }

  neon_add(a.data(), b.data(), out.data(), n);
  for (std::size_t i = 0; i < n; ++i) {
    ASSERT_EQ(out[i], a[i] + b[i]);
  }

  neon_triad(out.data(), b.data(), c.data(), 3.0f, n);
  for (std::size_t i = 0; i < n; ++i) {
    ASSERT_EQ(out[i], b[i] + 3.0f * c[i]);
  }
}

TEST_P(NeonKernelTest, SaxpyMatchesScalar) {
  const std::size_t n = GetParam();
  std::vector<float> x(n);
  std::vector<float> y(n);
  util::fill_uniform(std::span<float>(x), 4);
  util::fill_uniform(std::span<float>(y), 5);
  std::vector<float> expected = y;
  for (std::size_t i = 0; i < n; ++i) {
    expected[i] += 2.5f * x[i];
  }
  neon_saxpy(2.5f, x.data(), y.data(), n);
  EXPECT_EQ(y, expected);
}

TEST_P(NeonKernelTest, DotMatchesDoubleReference) {
  const std::size_t n = GetParam();
  std::vector<float> x(n);
  std::vector<float> y(n);
  util::fill_uniform(std::span<float>(x), 6);
  util::fill_uniform(std::span<float>(y), 7);
  double expected = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    expected += static_cast<double>(x[i]) * y[i];
  }
  const float got = neon_dot(x.data(), y.data(), n);
  EXPECT_NEAR(got, expected, std::max(1.0, expected) * 1e-5);
}

// Ragged sizes exercise every tail path (16-wide, 4-wide, scalar).
INSTANTIATE_TEST_SUITE_P(TailSizes, NeonKernelTest,
                         ::testing::Values(1, 3, 4, 5, 15, 16, 17, 63, 64,
                                           100, 1024));

TEST(NeonSgemm, MatchesReference) {
  for (const std::size_t n : {8u, 17u, 64u, 96u}) {
    std::vector<float> a(n * n);
    std::vector<float> b(n * n);
    std::vector<float> c(n * n, -1.0f);
    std::vector<float> expected(n * n);
    util::fill_uniform(std::span<float>(a), 8);
    util::fill_uniform(std::span<float>(b), 9);
    neon_sgemm(n, n, n, a.data(), n, b.data(), n, c.data(), n);
    accelerate::reference::sgemm(false, false, n, n, n, 1.0f, a.data(), n,
                                 b.data(), n, 0.0f, expected.data(), n);
    EXPECT_LE(accelerate::reference::max_abs_diff(expected.data(), c.data(), n,
                                                  n, n),
              accelerate::reference::gemm_tolerance(n))
        << "n=" << n;
  }
}

TEST(NeonSgemm, NonSquareWithLeadingDimensions) {
  const std::size_t m = 12;
  const std::size_t n = 20;
  const std::size_t k = 36;
  const std::size_t ld = 40;
  std::vector<float> a(m * ld);
  std::vector<float> b(k * ld);
  std::vector<float> c(m * ld, 0.0f);
  std::vector<float> expected(m * ld, 0.0f);
  util::fill_uniform(std::span<float>(a), 10);
  util::fill_uniform(std::span<float>(b), 11);
  neon_sgemm(m, n, k, a.data(), ld, b.data(), ld, c.data(), ld);
  accelerate::reference::sgemm(false, false, m, n, k, 1.0f, a.data(), ld,
                               b.data(), ld, 0.0f, expected.data(), ld);
  EXPECT_LE(
      accelerate::reference::max_abs_diff(expected.data(), c.data(), m, n, ld),
      accelerate::reference::gemm_tolerance(k));
}

}  // namespace
}  // namespace ao::simd
