#pragma once

/// Scripted-fault istream for wire-level tests: serves a captured byte
/// payload until a scripted offset, then truncates (end-of-stream),
/// corrupts (the byte arrives bit-flipped) or stalls (reads block until
/// release()). One fault vocabulary shared by the frame codec tests and
/// the chaos suite instead of ad-hoc substr() surgery per test.

#include <condition_variable>
#include <cstddef>
#include <istream>
#include <mutex>
#include <streambuf>
#include <string>
#include <utility>

namespace ao::test {

/// What happens when the scripted byte offset is reached.
enum class Fault {
  kNone,      ///< pass-through: the whole payload is served unchanged
  kTruncate,  ///< end-of-stream once `at` bytes were served
  kCorrupt,   ///< the single byte at offset `at` arrives XOR 0xFF
  kStall,     ///< reads block at offset `at` until release() is called
};

class FaultStream : public std::istream {
 public:
  explicit FaultStream(std::string payload, Fault fault = Fault::kNone,
                       std::size_t at = 0)
      : std::istream(nullptr), buf_(std::move(payload), fault, at) {
    rdbuf(&buf_);
  }

  /// Unblocks a kStall permanently (reads continue past the offset).
  /// Safe from any thread.
  void release() { buf_.release(); }

 private:
  class Buf : public std::streambuf {
   public:
    Buf(std::string payload, Fault fault, std::size_t at)
        : payload_(std::move(payload)), fault_(fault), at_(at) {}

    void release() {
      {
        std::lock_guard lock(mutex_);
        released_ = true;
      }
      released_cv_.notify_all();
    }

   protected:
    // One byte per underflow keeps the fault offset exact: the reader can
    // never buffer past the scripted point before the fault applies.
    int_type underflow() override {
      if (pos_ >= payload_.size()) {
        return traits_type::eof();
      }
      if (fault_ == Fault::kTruncate && pos_ >= at_) {
        return traits_type::eof();
      }
      if (fault_ == Fault::kStall && pos_ == at_) {
        std::unique_lock lock(mutex_);
        released_cv_.wait(lock, [this] { return released_; });
      }
      current_ = payload_[pos_];
      if (fault_ == Fault::kCorrupt && pos_ == at_) {
        current_ = static_cast<char>(
            static_cast<unsigned char>(current_) ^ 0xFFu);
      }
      ++pos_;
      setg(&current_, &current_, &current_ + 1);
      return traits_type::to_int_type(current_);
    }

   private:
    const std::string payload_;
    const Fault fault_;
    const std::size_t at_;
    std::size_t pos_ = 0;
    char current_ = 0;
    std::mutex mutex_;
    std::condition_variable released_cv_;
    bool released_ = false;
  };

  Buf buf_;
};

}  // namespace ao::test
