#include <gtest/gtest.h>

#include "precision/precision_study.hpp"
#include "util/error.hpp"

namespace ao::precision {
namespace {

class PrecisionStudyTest : public ::testing::TestWithParam<soc::ChipModel> {};

TEST_P(PrecisionStudyTest, AccuracyOrderingHolds) {
  const auto results = run_gemm_precision_study(GetParam(), 128);
  ASSERT_EQ(results.size(), 4u);

  const auto& fp64 = results[0];
  const auto& emu = results[1];
  const auto& fp32 = results[2];
  const auto& fp16 = results[3];

  // FP64 native is the reference: zero error by construction.
  EXPECT_EQ(fp64.max_abs_error, 0.0);
  // Emulated FP64 carries ~14 digits, FP32 ~6, FP16 ~3.
  EXPECT_LT(emu.max_abs_error, 1e-9);
  EXPECT_GT(fp32.max_abs_error, emu.max_abs_error);
  EXPECT_GT(fp16.max_abs_error, fp32.max_abs_error * 10.0);
  EXPECT_GT(emu.significant_digits, 10.0);
  EXPECT_GT(fp32.significant_digits, 4.0);
  EXPECT_LT(fp16.significant_digits, 4.0);
}

TEST_P(PrecisionStudyTest, ThroughputOrderingHolds) {
  const auto results = run_gemm_precision_study(GetParam(), 64);
  const auto& fp64 = results[0];
  const auto& emu = results[1];
  const auto& fp32 = results[2];
  const auto& fp16 = results[3];

  // FP16 > FP32 > FP64 native > FP64 emulated, the trade-off the paper's
  // future-work section asks about.
  EXPECT_GT(fp16.modeled_gflops, fp32.modeled_gflops);
  EXPECT_GT(fp32.modeled_gflops, fp64.modeled_gflops);
  EXPECT_GT(fp64.modeled_gflops, emu.modeled_gflops);
  // The emulation penalty is roughly an order of magnitude vs FP32.
  EXPECT_GT(fp32.modeled_gflops / emu.modeled_gflops, 5.0);
}

TEST_P(PrecisionStudyTest, ErrorGrowsWithSize) {
  const auto small = run_gemm_precision_study(GetParam(), 32);
  const auto large = run_gemm_precision_study(GetParam(), 256);
  // Longer dot products accumulate more rounding error in FP32.
  EXPECT_GT(large[2].max_abs_error, small[2].max_abs_error);
}

INSTANTIATE_TEST_SUITE_P(AllChips, PrecisionStudyTest,
                         ::testing::Values(soc::ChipModel::kM1,
                                           soc::ChipModel::kM4),
                         [](const auto& info) { return to_string(info.param); });

TEST(PrecisionStudy, FormatNames) {
  EXPECT_NE(to_string(Format::kFp64Emulated).find("double-single"),
            std::string::npos);
  EXPECT_NE(to_string(Format::kFp16).find("FP16"), std::string::npos);
}

TEST(PrecisionStudy, RejectsHugeSizes) {
  EXPECT_THROW(run_gemm_precision_study(soc::ChipModel::kM1, 4096),
               util::InvalidArgument);
}

}  // namespace
}  // namespace ao::precision
