#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "accelerate/reference_blas.hpp"
#include "amx/amx_gemm.hpp"
#include "amx/amx_unit.hpp"
#include "amx/float16.hpp"
#include "util/error.hpp"
#include "util/rng.hpp"

namespace ao::amx {
namespace {

// ------------------------------------------------------------ float16 ------

TEST(Float16, ExactValuesRoundTrip) {
  for (const float v : {0.0f, 1.0f, -1.0f, 0.5f, 2.0f, 1024.0f, -0.25f}) {
    EXPECT_EQ(half_to_float(float_to_half(v)), v) << v;
  }
}

TEST(Float16, RoundingErrorBounded) {
  util::Xoshiro256 rng(3);
  for (int i = 0; i < 10000; ++i) {
    const float v = rng.next_float();  // [0, 1)
    const float rt = half_to_float(float_to_half(v));
    // FP16 has 11 significand bits: relative error < 2^-11.
    EXPECT_NEAR(rt, v, std::max(std::fabs(v), 1e-4f) * 0x1.0p-10f);
  }
}

TEST(Float16, OverflowToInfinity) {
  const Half h = float_to_half(100000.0f);  // > 65504 (fp16 max)
  EXPECT_TRUE(std::isinf(half_to_float(h)));
  EXPECT_GT(half_to_float(h), 0.0f);
  EXPECT_TRUE(std::isinf(half_to_float(float_to_half(-1e9f))));
  EXPECT_LT(half_to_float(float_to_half(-1e9f)), 0.0f);
}

TEST(Float16, SubnormalsPreserved) {
  const float tiny = 1e-5f;  // subnormal in fp16 (min normal ~6.1e-5)
  const float rt = half_to_float(float_to_half(tiny));
  EXPECT_GT(rt, 0.0f);
  EXPECT_NEAR(rt, tiny, 1e-6f);
}

TEST(Float16, NanPropagates) {
  EXPECT_TRUE(std::isnan(half_to_float(float_to_half(NAN))));
}

TEST(Float16, UnderflowToZero) {
  EXPECT_EQ(half_to_float(float_to_half(1e-12f)), 0.0f);
}

// ------------------------------------------------------------ AmxUnit ------

TEST(AmxUnit, RequiresSet) {
  AmxUnit unit;
  float data[16] = {};
  EXPECT_THROW(unit.ldx(0, data), util::StateError);
  EXPECT_THROW(unit.fma32(0, 0), util::StateError);
  unit.set();
  EXPECT_NO_THROW(unit.ldx(0, data));
  unit.clr();
  EXPECT_THROW(unit.ldx(0, data), util::StateError);
}

TEST(AmxUnit, RegisterGeometry) {
  EXPECT_EQ(AmxUnit::kRegBytes, 64u);
  EXPECT_EQ(AmxUnit::kXRegs, 8u);
  EXPECT_EQ(AmxUnit::kYRegs, 8u);
  EXPECT_EQ(AmxUnit::kZRows, 64u);
  EXPECT_EQ(AmxUnit::kLanesF32, 16u);
}

TEST(AmxUnit, LoadStoreRoundTrip) {
  AmxUnit unit;
  unit.set();
  alignas(64) float in[16];
  for (int i = 0; i < 16; ++i) {
    in[i] = static_cast<float>(i) * 1.5f;
  }
  unit.ldx(3, in);
  const auto x = unit.x_f32(3);
  for (int i = 0; i < 16; ++i) {
    EXPECT_EQ(x[i], in[i]);
  }
  unit.ldz(10, in);
  alignas(64) float out[16] = {};
  unit.stz(10, out);
  for (int i = 0; i < 16; ++i) {
    EXPECT_EQ(out[i], in[i]);
  }
}

TEST(AmxUnit, BoundsChecked) {
  AmxUnit unit;
  unit.set();
  float data[16] = {};
  EXPECT_THROW(unit.ldx(8, data), util::InvalidArgument);
  EXPECT_THROW(unit.ldy(8, data), util::InvalidArgument);
  EXPECT_THROW(unit.ldz(64, data), util::InvalidArgument);
  EXPECT_THROW(unit.fma32(0, 0, 4), util::InvalidArgument);  // z_offset > 3
}

TEST(AmxUnit, Fma32IsOuterProduct) {
  AmxUnit unit;
  unit.set();
  alignas(64) float x[16];
  alignas(64) float y[16];
  for (int i = 0; i < 16; ++i) {
    x[i] = static_cast<float>(i + 1);
    y[i] = static_cast<float>(2 * i + 1);
  }
  unit.ldx(0, x);
  unit.ldy(0, y);
  unit.fma32(0, 0);
  // z[j*4][i] == x[i] * y[j] (fp32 interleave-4 layout).
  for (int j = 0; j < 16; ++j) {
    const auto z = unit.z_row_f32(j * 4);
    for (int i = 0; i < 16; ++i) {
      ASSERT_EQ(z[i], x[i] * y[j]) << "i=" << i << " j=" << j;
    }
  }
  EXPECT_EQ(unit.mac_count(), 256u);
}

TEST(AmxUnit, Fma32Accumulates) {
  AmxUnit unit;
  unit.set();
  alignas(64) float ones[16];
  for (auto& v : ones) {
    v = 1.0f;
  }
  unit.ldx(0, ones);
  unit.ldy(0, ones);
  unit.fma32(0, 0);
  unit.fma32(0, 0);
  EXPECT_EQ(unit.z_row_f32(0)[0], 2.0f);
  // Overwrite mode resets instead.
  unit.fma32(0, 0, 0, /*accumulate=*/false);
  EXPECT_EQ(unit.z_row_f32(0)[0], 1.0f);
}

TEST(AmxUnit, ZOffsetsAreIndependentAccumulators) {
  AmxUnit unit;
  unit.set();
  alignas(64) float ones[16];
  for (auto& v : ones) {
    v = 1.0f;
  }
  unit.ldx(0, ones);
  unit.ldy(0, ones);
  unit.fma32(0, 0, 0);
  unit.fma32(0, 0, 1);
  unit.fma32(0, 0, 1);
  EXPECT_EQ(unit.z_row_f32(0)[0], 1.0f);  // offset 0: one product
  EXPECT_EQ(unit.z_row_f32(1)[0], 2.0f);  // offset 1: two products
}

TEST(AmxUnit, SetZeroesState) {
  AmxUnit unit;
  unit.set();
  alignas(64) float ones[16];
  for (auto& v : ones) {
    v = 1.0f;
  }
  unit.ldx(0, ones);
  unit.ldy(0, ones);
  unit.fma32(0, 0);
  unit.set();  // re-arm
  EXPECT_EQ(unit.z_row_f32(0)[0], 0.0f);
  EXPECT_EQ(unit.mac_count(), 0u);
}

TEST(AmxUnit, Fma16ComputesThroughHalf) {
  AmxUnit unit;
  unit.set();
  alignas(64) Half x[32];
  alignas(64) Half y[32];
  for (int i = 0; i < 32; ++i) {
    x[i] = float_to_half(0.5f);
    y[i] = float_to_half(2.0f);
  }
  unit.ldx(0, x);
  unit.ldy(0, y);
  unit.fma16(0, 0);
  // First lane of the first row pair: 0.5 * 2.0 accumulated at least once.
  EXPECT_GT(unit.z_row_f32(0)[0], 0.0f);
}

// ----------------------------------------------------------- amx_sgemm -----

void check_amx_sgemm(std::size_t m, std::size_t n, std::size_t k, float alpha,
                     float beta, int threads) {
  std::vector<float> a(m * k);
  std::vector<float> b(k * n);
  std::vector<float> c(m * n, 0.5f);
  std::vector<float> expected = c;
  util::fill_uniform(std::span<float>(a), 100 + m);
  util::fill_uniform(std::span<float>(b), 200 + n);

  amx_sgemm(m, n, k, alpha, a.data(), k, b.data(), n, beta, c.data(), n,
            threads);
  accelerate::reference::sgemm(false, false, m, n, k, alpha, a.data(), k,
                               b.data(), n, beta, expected.data(), n);
  EXPECT_LE(
      accelerate::reference::max_abs_diff(expected.data(), c.data(), m, n, n),
      accelerate::reference::gemm_tolerance(k))
      << "m=" << m << " n=" << n << " k=" << k;
}

TEST(AmxGemm, TileMultiples) { check_amx_sgemm(64, 64, 64, 1.0f, 0.0f, 1); }

TEST(AmxGemm, RaggedEdges) {
  check_amx_sgemm(17, 23, 31, 1.0f, 0.0f, 1);
  check_amx_sgemm(15, 16, 17, 1.0f, 0.0f, 1);
  check_amx_sgemm(1, 1, 1, 1.0f, 0.0f, 1);
}

TEST(AmxGemm, NonSquare) {
  check_amx_sgemm(96, 32, 128, 1.0f, 0.0f, 1);
  check_amx_sgemm(32, 128, 16, 1.0f, 0.0f, 1);
}

TEST(AmxGemm, AlphaBeta) {
  check_amx_sgemm(48, 48, 48, 2.5f, 1.5f, 1);
  check_amx_sgemm(48, 48, 48, 0.0f, 2.0f, 1);  // alpha=0 -> C = beta*C
}

TEST(AmxGemm, ParallelMatchesSerial) {
  const std::size_t n = 160;
  std::vector<float> a(n * n);
  std::vector<float> b(n * n);
  util::fill_uniform(std::span<float>(a), 1);
  util::fill_uniform(std::span<float>(b), 2);
  std::vector<float> serial(n * n, 0.0f);
  std::vector<float> parallel(n * n, 0.0f);
  amx_sgemm(n, n, n, 1.0f, a.data(), n, b.data(), n, 0.0f, serial.data(), n, 1);
  amx_sgemm(n, n, n, 1.0f, a.data(), n, b.data(), n, 0.0f, parallel.data(), n,
            0);
  // Tiles are independent: parallel execution must be bit-identical.
  for (std::size_t i = 0; i < n * n; ++i) {
    ASSERT_EQ(serial[i], parallel[i]) << i;
  }
}

TEST(AmxGemm, LeadingDimensions) {
  // Operate on a 20x20 sub-matrix inside 32-wide storage.
  const std::size_t n = 20;
  const std::size_t ld = 32;
  std::vector<float> a(n * ld);
  std::vector<float> b(n * ld);
  std::vector<float> c(n * ld, 0.0f);
  std::vector<float> expected(n * ld, 0.0f);
  util::fill_uniform(std::span<float>(a), 9);
  util::fill_uniform(std::span<float>(b), 10);
  amx_sgemm(n, n, n, 1.0f, a.data(), ld, b.data(), ld, 0.0f, c.data(), ld, 1);
  accelerate::reference::sgemm(false, false, n, n, n, 1.0f, a.data(), ld,
                               b.data(), ld, 0.0f, expected.data(), ld);
  EXPECT_LE(
      accelerate::reference::max_abs_diff(expected.data(), c.data(), n, n, ld),
      accelerate::reference::gemm_tolerance(n));
}

TEST(AmxGemm, RejectsNullAndBadLd) {
  std::vector<float> buf(16);
  EXPECT_THROW(
      amx_sgemm(4, 4, 4, 1.0f, nullptr, 4, buf.data(), 4, 0.0f, buf.data(), 4),
      util::InvalidArgument);
  EXPECT_THROW(amx_sgemm(4, 4, 8, 1.0f, buf.data(), 4 /* < k */, buf.data(), 4,
                         0.0f, buf.data(), 4),
               util::InvalidArgument);
}

}  // namespace
}  // namespace ao::amx
