#include <gtest/gtest.h>

#include <sys/socket.h>
#include <sys/wait.h>
#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <condition_variable>
#include <csignal>
#include <cstdint>
#include <filesystem>
#include <functional>
#include <future>
#include <map>
#include <memory>
#include <mutex>
#include <sstream>
#include <streambuf>
#include <string>
#include <thread>
#include <vector>

#include "fault_stream.hpp"
#include "obs/profiler.hpp"
#include "orchestrator/campaign.hpp"
#include "orchestrator/record.hpp"
#include "orchestrator/result_cache.hpp"
#include "orchestrator/scheduler.hpp"
#include "service/campaign_queue.hpp"
#include "service/frame.hpp"
#include "service/outbox.hpp"
#include "service/protocol.hpp"
#include "service/service.hpp"
#include "service/socket.hpp"
#include "service/worker_link.hpp"
#include "service/worker_registry.hpp"

// Deterministic chaos suite: an in-process daemon plus scripted frame
// workers whose connections die at scripted points of the conversation —
// after hello, mid-records, mid-store-frame — proving the resilience
// layer end to end: heartbeat retirement, failure-domain rescheduling
// under a retry budget, deadline/abort cancellation, and bounded
// backpressure. Every synchronization is an event (promise/future,
// condition variable, registry state), never a sleep standing in for one.

namespace ao::service {
namespace {

// ---------------------------------------------------------------- helpers --

std::filesystem::path temp_dir(const std::string& name) {
  const auto dir =
      std::filesystem::temp_directory_path() / ("ao_chaos_" + name);
  std::filesystem::remove_all(dir);
  std::filesystem::create_directories(dir);
  return dir;
}

std::vector<std::string> serve_lines(CampaignService& service,
                                     const std::string& input) {
  std::istringstream in(input);
  std::ostringstream out;
  service.serve(in, out);
  std::vector<std::string> lines;
  std::istringstream reader(out.str());
  std::string line;
  while (std::getline(reader, line)) {
    lines.push_back(line);
  }
  return lines;
}

bool starts_with(const std::string& line, const std::string& prefix) {
  return line.rfind(prefix, 0) == 0;
}

bool wait_until(const std::function<bool()>& condition,
                int timeout_ms = 20000) {
  for (int waited = 0; waited < timeout_ms; waited += 2) {
    if (condition()) {
      return true;
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
  }
  return condition();
}

std::size_t count_prefixed(const std::vector<std::string>& lines,
                           const std::string& prefix) {
  std::size_t count = 0;
  for (const auto& line : lines) {
    if (starts_with(line, prefix)) {
      ++count;
    }
  }
  return count;
}

bool any_line_contains(const std::vector<std::string>& lines,
                       const std::string& needle) {
  for (const auto& line : lines) {
    if (line.find(needle) != std::string::npos) {
      return true;
    }
  }
  return false;
}

/// The mixed nine-kind campaign of the service tests: 20 records.
std::string nine_kind_block(std::size_t workers, std::size_t shards) {
  std::ostringstream out;
  out << "begin ninekinds\n"
         "chips m1,m3\n"
         "impls cpu-single,gpu-mps\n"
         "sizes 32\n"
         "repetitions 2\n"
         "stream 1,2 2 1024\n"
         "gpu-stream 2 1024\n"
         "precision 24 5\n"
         "ane 32\n"
         "fp64emu 24 11\n"
         "sme 32 13\n"
         "power 0.25\n"
      << "workers " << workers << "\nshards " << shards << "\nrun\n";
  return out.str();
}

/// Inserts one request directive line right before the final `run`.
std::string with_directive(std::string block, const std::string& line) {
  block.insert(block.rfind("run\n"), line + "\n");
  return block;
}

std::map<std::uint64_t, std::string> entries_by_key(
    orchestrator::ResultCache& cache) {
  std::map<std::uint64_t, std::string> out;
  for (const auto& [key, record] : cache.entries()) {
    out[key.fingerprint()] = orchestrator::serialize_record(record);
  }
  return out;
}

// ------------------------------------------------------------ chaos actors --

/// Where a scripted worker kills its connection.
enum class KillPoint {
  kMidRecords,     ///< streams half its records frames, then the socket dies
  kMidStoreFrame,  ///< streams every record, dies halfway through `store`
};

struct ShardResult {
  std::vector<std::string> lines;  ///< store entry lines, settle order
  std::string store;               ///< serialize_store() over the shard
};

/// Computes a task's records and store exactly like ao_worker does, so the
/// scripted deaths below interrupt byte-identical genuine traffic — and the
/// retried shard reproduces the exact same entry lines, which is what the
/// daemon's replay dedup is up against.
ShardResult run_task_locally(const RemoteTask& task) {
  orchestrator::Campaign campaign = task.request.to_campaign();
  orchestrator::JobQueue queue;
  campaign.expand_subset(queue, task.groups);
  orchestrator::ResultCache cache(std::max<std::size_t>(4096, queue.total()));
  orchestrator::CampaignScheduler::Options options;
  options.concurrency = 1;
  orchestrator::CampaignScheduler scheduler(task.request.options(), options,
                                            &cache);
  const std::uint64_t fp =
      orchestrator::options_fingerprint(task.request.options());
  ShardResult result;
  scheduler.run(queue, [&](const orchestrator::ExperimentJob& job,
                           const orchestrator::MeasurementRecord& record,
                           bool /*from_cache*/) {
    result.lines.push_back(orchestrator::format_store_entry(
        orchestrator::key_for_job(job, fp), record));
  });
  result.store = cache.serialize_store();
  return result;
}

/// A worker that dies at a scripted point of its first task, then fulfils
/// `died`. The socket is shut down (not merely closed) so the daemon's next
/// read observes the break exactly where the script put it.
void run_doomed_worker(int fd, const std::string& name, KillPoint kill,
                       std::promise<void>& died) {
  {
    SocketStream stream(fd);
    stream << "worker " << name << '\n';
    stream.flush();
    std::string ack;
    if (std::getline(stream, ack)) {
      for (;;) {
        std::string error;
        const auto frame = read_frame(stream, &error);
        if (!frame.has_value() || frame->type == kFrameBye) {
          break;
        }
        if (frame->type == kFramePing) {
          write_frame(stream, {kFramePong, {}});
          continue;
        }
        if (frame->type != kFrameTask) {
          break;
        }
        const auto task = decode_task(frame->payload);
        if (!task.has_value()) {
          break;
        }
        const ShardResult result = run_task_locally(*task);
        if (kill == KillPoint::kMidRecords) {
          for (std::size_t i = 0; i < result.lines.size() / 2; ++i) {
            write_frame(stream, {kFrameRecords, result.lines[i]});
          }
        } else {
          for (const auto& line : result.lines) {
            write_frame(stream, {kFrameRecords, line});
          }
          // Half a store frame: the daemon reads `frame-truncated` and must
          // retire the endpoint, not trust the partial payload.
          const std::string encoded = encode_frame({kFrameStore, result.store});
          stream.write(encoded.data(),
                       static_cast<std::streamsize>(encoded.size() / 2));
        }
        stream.flush();
        ::shutdown(fd, SHUT_RDWR);
        break;
      }
    }
  }  // the SocketStream destructor closes the fd
  died.set_value();
}

/// A well-behaved scripted worker that holds its first task until `gate`
/// fires. The gate is the suite's determinism handshake: the healthy worker
/// cannot finish a shard before the doomed worker has died, so with two
/// queued shards the doomed worker always receives one — the loss and the
/// cross-endpoint retry happen on every run, not most runs. (The wait_for
/// bound only keeps a regressed daemon from hanging the suite.)
void run_healthy_worker(int fd, const std::string& name,
                        std::shared_future<void> gate) {
  SocketStream stream(fd);
  stream << "worker " << name << '\n';
  stream.flush();
  std::string ack;
  if (!std::getline(stream, ack)) {
    return;
  }
  bool first_task = true;
  for (;;) {
    std::string error;
    const auto frame = read_frame(stream, &error);
    if (!frame.has_value() || frame->type == kFrameBye) {
      return;
    }
    if (frame->type == kFramePing) {
      write_frame(stream, {kFramePong, {}});
      continue;
    }
    if (frame->type != kFrameTask) {
      return;
    }
    const auto task = decode_task(frame->payload);
    if (!task.has_value()) {
      return;
    }
    if (first_task && gate.valid()) {
      gate.wait_for(std::chrono::seconds(20));
    }
    first_task = false;
    const ShardResult result = run_task_locally(*task);
    for (const auto& line : result.lines) {
      write_frame(stream, {kFrameRecords, line});
    }
    write_frame(stream, {kFrameStore, result.store});
  }
}

/// One daemon + one doomed and one healthy scripted worker over
/// socketpairs, ready for a campaign. Joining is the fixture's job.
struct ChaosFleet {
  CampaignService& service;
  std::thread serve_doomed;
  std::thread serve_healthy;
  std::thread doomed;
  std::thread healthy;
  std::promise<void> died;

  ChaosFleet(CampaignService& svc, KillPoint kill) : service(svc) {
    int doomed_fd[2];
    int healthy_fd[2];
    if (::socketpair(AF_UNIX, SOCK_STREAM, 0, doomed_fd) != 0 ||
        ::socketpair(AF_UNIX, SOCK_STREAM, 0, healthy_fd) != 0) {
      ADD_FAILURE() << "socketpair failed";
      return;
    }
    serve_doomed = std::thread([this, fd = doomed_fd[0]] {
      SocketStream stream(fd);
      service.serve(stream, stream);
    });
    serve_healthy = std::thread([this, fd = healthy_fd[0]] {
      SocketStream stream(fd);
      service.serve(stream, stream);
    });
    doomed = std::thread([this, kill, fd = doomed_fd[1]] {
      run_doomed_worker(fd, "doomed", kill, died);
    });
    healthy = std::thread(
        [gate = died.get_future().share(), fd = healthy_fd[1]] {
          run_healthy_worker(fd, "healthy", gate);
        });
  }

  void join() {
    serve_doomed.join();
    serve_healthy.join();
    doomed.join();
    healthy.join();
  }
};

// --------------------------------------------------- chaos: rescheduling --

// A worker endpoint dies mid-records. The shard must be retried on the
// OTHER endpoint (failure-domain rescheduling), the records the dead worker
// already streamed must not appear twice, and the merged store must be
// bit-identical to a single-process run of the same campaign.
TEST(Chaos, WorkerDyingMidRecordsIsRescheduledWithoutDuplicates) {
  std::signal(SIGPIPE, SIG_IGN);
  const auto dir = temp_dir("midrec");
  CampaignService::Config config;
  config.shard_dir = dir.string();
  config.remote_only = true;  // a silent local fallback would mask the retry
  config.remote_wait_ms = 20000;
  CampaignService service(std::move(config));
  ChaosFleet fleet(service, KillPoint::kMidRecords);
  ASSERT_TRUE(wait_until([&] { return service.workers().idle_count() == 2; }));

  const auto lines = serve_lines(service, nine_kind_block(2, 2));
  ASSERT_TRUE(starts_with(lines.back(), "done campaign ")) << lines.back();
  EXPECT_NE(lines.back().find("shards 2 remote 2"), std::string::npos)
      << lines.back();
  // The dead worker's half-streamed records were replayed by the retry and
  // deduplicated: exactly the campaign's 20 unique records reach the client.
  EXPECT_EQ(count_prefixed(lines, "record "), 20u);
  EXPECT_TRUE(any_line_contains(lines, " lost worker doomed rescheduling"))
      << "expected a lost-worker event";
  EXPECT_TRUE(any_line_contains(lines, " retry worker healthy"))
      << "expected the shard to be retried on the surviving endpoint";
  EXPECT_TRUE(std::filesystem::is_empty(dir));  // all transport, no files

  // The retry shows up in stats; the registry reports liveness ages.
  const auto stat_lines =
      serve_lines(service, "stats\nstats-worker\nshutdown\n");
  EXPECT_TRUE(any_line_contains(stat_lines, " shard-retries 1"));
  EXPECT_TRUE(any_line_contains(stat_lines, " last-seen-ns "));
  fleet.join();

  CampaignService single({});
  const auto single_lines = serve_lines(single, nine_kind_block(2, 1));
  ASSERT_TRUE(starts_with(single_lines.back(), "done campaign "));
  auto chaos_entries = entries_by_key(service.cache());
  ASSERT_EQ(chaos_entries.size(), 20u);
  EXPECT_EQ(chaos_entries, entries_by_key(single.cache()));
  std::filesystem::remove_all(dir);
}

// A worker endpoint dies inside the store frame itself — after every record
// was streamed. The truncated store must be discarded (never half-merged),
// the shard retried, and the final merge still bit-identical.
TEST(Chaos, WorkerDyingMidStoreFrameYieldsABitIdenticalMerge) {
  std::signal(SIGPIPE, SIG_IGN);
  const auto dir = temp_dir("midstore");
  CampaignService::Config config;
  config.shard_dir = dir.string();
  config.remote_only = true;
  config.remote_wait_ms = 20000;
  CampaignService service(std::move(config));
  ChaosFleet fleet(service, KillPoint::kMidStoreFrame);
  ASSERT_TRUE(wait_until([&] { return service.workers().idle_count() == 2; }));

  const auto lines = serve_lines(service, nine_kind_block(2, 2));
  ASSERT_TRUE(starts_with(lines.back(), "done campaign ")) << lines.back();
  // Here the doomed worker streamed its FULL record set before dying, so
  // the retry replays every line of that shard: the dedup must still hold
  // the client stream at exactly 20.
  EXPECT_EQ(count_prefixed(lines, "record "), 20u);
  EXPECT_TRUE(any_line_contains(lines, " lost worker doomed rescheduling"));
  EXPECT_TRUE(any_line_contains(lines, " retry worker healthy"));

  serve_lines(service, "shutdown\n");
  fleet.join();

  CampaignService single({});
  const auto single_lines = serve_lines(single, nine_kind_block(2, 1));
  ASSERT_TRUE(starts_with(single_lines.back(), "done campaign "));
  auto chaos_entries = entries_by_key(service.cache());
  ASSERT_EQ(chaos_entries.size(), 20u);
  EXPECT_EQ(chaos_entries, entries_by_key(single.cache()));
  std::filesystem::remove_all(dir);
}

// The ISSUE's acceptance criterion: killing a worker under --remote-only
// with the retry budget exhausted must surface a structured shard error —
// and leave the session alive — not hang the campaign.
TEST(Chaos, RetryBudgetExhaustionSurfacesAShardErrorNotAHang) {
  std::signal(SIGPIPE, SIG_IGN);
  const auto dir = temp_dir("budget");
  CampaignService::Config config;
  config.shard_dir = dir.string();
  config.remote_only = true;
  config.remote_wait_ms = 20000;
  CampaignService service(std::move(config));
  ChaosFleet fleet(service, KillPoint::kMidRecords);
  ASSERT_TRUE(wait_until([&] { return service.workers().idle_count() == 2; }));

  const auto lines = serve_lines(
      service,
      with_directive(nine_kind_block(2, 2), "retries 0") + "ping\n");
  ASSERT_FALSE(lines.empty());
  EXPECT_EQ(lines.back(), "pong");  // the session survived the failure
  EXPECT_TRUE(
      any_line_contains(lines, " lost worker doomed retry-budget-exhausted"))
      << "expected the budget-exhausted settlement event";
  bool structured_failure = false;
  for (const auto& line : lines) {
    if (starts_with(line, "error exec-failed") &&
        line.find("retry budget exhausted") != std::string::npos) {
      structured_failure = true;
    }
  }
  EXPECT_TRUE(structured_failure) << "expected a structured shard failure";
  EXPECT_EQ(count_prefixed(lines, "done campaign "), 0u);
  // The healthy shard completed and the doomed shard half-streamed: some
  // records flowed, the full set did not.
  EXPECT_LT(count_prefixed(lines, "record "), 20u);

  serve_lines(service, "shutdown\n");
  fleet.join();
  std::filesystem::remove_all(dir);
}

// ------------------------------------------------------ heartbeat probes --

/// A settable registry clock shared with the test body.
struct ManualClock {
  std::shared_ptr<std::atomic<std::uint64_t>> now =
      std::make_shared<std::atomic<std::uint64_t>>(0);
  WorkerRegistry::ClockFn fn() const {
    return [keep = now] { return keep->load(); };
  }
};

// Heartbeat sweeps under a manual clock: a worker that answers the ping
// survives (and its last-seen age resets); once it stops answering, the
// next due sweep retires it and unblocks its parked session.
TEST(Heartbeat, SilentIdleWorkerIsRetiredOnTheNextDueSweep) {
  ManualClock clock;
  WorkerRegistry registry;
  registry.configure({/*heartbeat_interval_ns=*/100, clock.fn()});

  // The worker's inbound stream holds exactly one pong: it answers the
  // first probe and falls silent forever after.
  std::stringstream worker_in;
  write_frame(worker_in, {kFramePong, {}});
  std::stringstream worker_out;
  std::thread parked(
      [&] { registry.park("flaky", worker_in, worker_out); });
  ASSERT_TRUE(wait_until([&] { return registry.idle_count() == 1; }));

  // Not due yet: no probe goes out.
  EXPECT_EQ(registry.heartbeat(), 0u);
  EXPECT_TRUE(worker_out.str().empty());

  // Due and answered: the worker stays, its last-seen clock resets.
  clock.now->store(100);
  EXPECT_EQ(registry.heartbeat(), 0u);
  EXPECT_EQ(registry.idle_count(), 1u);
  {
    std::string error;
    std::istringstream probe(worker_out.str());
    const auto frame = read_frame(probe, &error);
    ASSERT_TRUE(frame.has_value()) << error;
    EXPECT_EQ(frame->type, std::string(kFramePing));
  }
  clock.now->store(150);
  {
    const auto workers = registry.snapshot();
    ASSERT_EQ(workers.size(), 1u);
    EXPECT_EQ(workers[0].last_seen_age_ns, 50u);  // reset at the pong
  }

  // Due again, no pong left: retired, and the parked session returns.
  clock.now->store(250);
  EXPECT_EQ(registry.heartbeat(), 1u);
  parked.join();
  EXPECT_EQ(registry.connected_count(), 0u);
  registry.shutdown();
}

// A pong whose payload is all digits but exceeds UINT64_MAX (or is plain
// junk) must read as "no clock reading", never as an uncaught exception on
// the heartbeat thread — the pong still proves liveness.
TEST(Heartbeat, OverflowingPongClockPayloadIsIgnoredNotFatal) {
  ManualClock clock;
  WorkerRegistry registry;
  registry.configure({/*heartbeat_interval_ns=*/100, clock.fn()});

  // Two pongs queued: a 20-digit overflow value, then non-numeric junk.
  std::stringstream worker_in;
  write_frame(worker_in, {kFramePong, "99999999999999999999"});
  write_frame(worker_in, {kFramePong, "12ab"});
  std::stringstream worker_out;
  std::thread parked(
      [&] { registry.park("sloppy", worker_in, worker_out); });
  ASSERT_TRUE(wait_until([&] { return registry.idle_count() == 1; }));

  for (const std::uint64_t due : {100u, 250u}) {
    clock.now->store(due);
    EXPECT_EQ(registry.heartbeat(), 0u);  // alive both times, no terminate
    EXPECT_EQ(registry.idle_count(), 1u);
    const auto workers = registry.snapshot();
    ASSERT_EQ(workers.size(), 1u);
    EXPECT_FALSE(workers[0].has_clock_offset);  // payload estimated nothing
  }

  registry.shutdown();
  parked.join();
}

TEST(Heartbeat, ZeroIntervalDisablesProbes) {
  WorkerRegistry registry;  // default config: no heartbeat
  std::stringstream in, out;
  std::thread parked([&] { registry.park("idle", in, out); });
  ASSERT_TRUE(wait_until([&] { return registry.idle_count() == 1; }));
  EXPECT_EQ(registry.heartbeat(), 0u);
  EXPECT_EQ(registry.idle_count(), 1u);
  EXPECT_TRUE(out.str().empty());  // not a single probe byte
  registry.shutdown();
  parked.join();
}

// ------------------------------------------- acquire() deadline regression --

TEST(WorkerRegistry, AcquireTimesOutCleanlyWhenNoWorkerEverArrives) {
  WorkerRegistry registry;
  EXPECT_EQ(registry.acquire(0), nullptr);
  EXPECT_EQ(registry.acquire(30), nullptr);
}

TEST(WorkerRegistry, AcquireSeesAWorkerParkedWhileItWaits) {
  WorkerRegistry registry;
  std::stringstream in, out;
  std::unique_ptr<WorkerRegistry::Lease> lease;
  std::thread acquirer([&] { lease = registry.acquire(20000); });
  std::thread parker([&] { registry.park("late", in, out); });
  acquirer.join();
  ASSERT_NE(lease, nullptr);
  EXPECT_EQ(lease->name(), "late");
  lease->mark_failed();  // retire the endpoint so park() returns
  lease.reset();
  parker.join();
}

// Regression for the acquire()/park() deadline race: acquire() used a bare
// wait_until, so a park() notification landing as the deadline expired
// could be swallowed — nullptr despite an idle worker. The predicate form
// re-evaluates at the deadline. Race many short-deadline acquires against
// parks: the worker must always end up claimable and nothing may hang.
TEST(WorkerRegistry, AcquireDeadlineRaceNeverLosesAParkedWorker) {
  for (int i = 0; i < 32; ++i) {
    WorkerRegistry registry;
    std::stringstream in, out;
    std::thread parker([&] { registry.park("racer", in, out); });
    auto lease = registry.acquire(1);
    if (lease == nullptr) {
      lease = registry.acquire(20000);  // the worker IS there: must succeed
    }
    ASSERT_NE(lease, nullptr) << "iteration " << i;
    lease->mark_failed();
    lease.reset();
    parker.join();
  }
}

// ------------------------------------------------------ deadlines & abort --

/// A deterministic profiler clock advancing one millisecond per reading:
/// any nonzero campaign deadline expires within a handful of
/// instrumentation calls, independent of wall time.
obs::TimelineProfiler::ClockFn fast_clock() {
  auto ticks = std::make_shared<std::atomic<std::uint64_t>>(0);
  return [ticks] { return ticks->fetch_add(1'000'000); };
}

TEST(Deadline, RunningCampaignStopsBetweenJobsWithAStructuredError) {
  CampaignService::Config config;
  config.profile_clock = fast_clock();
  CampaignService service(std::move(config));

  // 50ms under the 1ms-per-reading clock: admission costs a handful of
  // readings (the deadline cannot evict the campaign while queued), while
  // finishing all 20 jobs costs well over fifty — the expiry always lands
  // between jobs, mid-run.
  const auto lines = serve_lines(
      service,
      with_directive(nine_kind_block(1, 1), "deadline 50") + "stats\nping\n");
  ASSERT_FALSE(lines.empty());
  EXPECT_EQ(lines.back(), "pong");  // the session outlives the expiry
  EXPECT_EQ(count_prefixed(lines, "done campaign "), 0u);
  EXPECT_TRUE(any_line_contains(lines, "deadline-exceeded campaign 1"));
  bool stopped = false;
  for (const auto& line : lines) {
    if (starts_with(line, "error deadline-exceeded campaign 1") &&
        line.find("streamed before stop") != std::string::npos) {
      stopped = true;
    }
  }
  EXPECT_TRUE(stopped) << "expected the partial-progress error reply";
  EXPECT_LT(count_prefixed(lines, "record "), 20u);
  EXPECT_TRUE(any_line_contains(lines, " deadline-expired 1"));
}

TEST(Deadline, QueuedCampaignIsEvictedWhenItsDeadlineExpires) {
  CampaignService service({});
  // Hold every resource so the campaign can never be admitted.
  auto blocker = service.queue().submit("blocker", 0, kResourceAll);
  ASSERT_TRUE(blocker);
  ASSERT_TRUE(blocker->try_start());

  const auto lines = serve_lines(
      service, with_directive(nine_kind_block(1, 1), "deadline 50"));
  EXPECT_EQ(count_prefixed(lines, "record "), 0u);  // it never ran
  EXPECT_EQ(count_prefixed(lines, "done campaign "), 0u);
  EXPECT_GE(count_prefixed(lines, "queued "), 1u);  // it did wait
  bool evicted = false;
  for (const auto& line : lines) {
    if (starts_with(line, "error deadline-exceeded campaign") &&
        line.find("cancelled while queued") != std::string::npos) {
      evicted = true;
    }
  }
  EXPECT_TRUE(evicted) << "expected a queue eviction error";

  const auto stats = serve_lines(service, "stats\n");
  EXPECT_TRUE(any_line_contains(stats, " deadline-expired 1"));
  blocker.reset();
}

TEST(Abort, CancelsAQueuedCampaignByName) {
  CampaignService service({});
  auto blocker = service.queue().submit("blocker", 0, kResourceAll);
  ASSERT_TRUE(blocker);
  ASSERT_TRUE(blocker->try_start());

  std::vector<std::string> session;
  std::thread waiter(
      [&] { session = serve_lines(service, nine_kind_block(1, 1)); });
  ASSERT_TRUE(
      wait_until([&] { return service.queue().queued_count() == 1; }));
  // The abort lands once the campaign's cancel handle is registered —
  // retry over the short submit-to-register window.
  bool abort_acknowledged = false;
  ASSERT_TRUE(wait_until([&] {
    if (abort_acknowledged) {
      return true;
    }
    const auto reply = serve_lines(service, "abort ninekinds\n");
    abort_acknowledged =
        !reply.empty() && reply[0] == "ok abort ninekinds cancelled 1";
    return abort_acknowledged;
  }));
  waiter.join();

  EXPECT_EQ(count_prefixed(session, "record "), 0u);
  EXPECT_TRUE(any_line_contains(session, "aborted campaign"));
  bool evicted = false;
  for (const auto& line : session) {
    if (starts_with(line, "error aborted campaign") &&
        line.find("cancelled while queued") != std::string::npos) {
      evicted = true;
    }
  }
  EXPECT_TRUE(evicted) << "expected a queue eviction error";
  const auto stats = serve_lines(service, "stats\n");
  EXPECT_TRUE(any_line_contains(stats, " aborted 1"));

  // Unknown names cancel nothing and still get a structured reply.
  const auto nothing = serve_lines(service, "abort nosuch\n");
  ASSERT_EQ(nothing.size(), 1u);
  EXPECT_EQ(nothing[0], "ok abort nosuch cancelled 0");
  blocker.reset();
}

// The scheduler-level stop contract the service's cancellation rides on:
// the predicate is polled between jobs, the stop surfaces as a
// CampaignStopped carrying the code, and already-settled jobs are kept.
TEST(Scheduler, StopPredicateRaisesCampaignStoppedBetweenJobs) {
  CampaignRequest request;
  request.name = "stoppable";
  request.chips = {soc::ChipModel::kM1};
  request.sme_sizes = {32, 48};
  orchestrator::Campaign campaign = request.to_campaign();
  orchestrator::JobQueue queue;
  campaign.expand(queue);
  ASSERT_GE(queue.total(), 2u);

  orchestrator::ResultCache cache;
  orchestrator::CampaignScheduler::Options options;
  options.concurrency = 1;
  orchestrator::CampaignScheduler scheduler(request.options(), options,
                                            &cache);
  std::atomic<std::size_t> records{0};
  bool threw = false;
  try {
    scheduler.run(
        queue,
        [&](const orchestrator::ExperimentJob&,
            const orchestrator::MeasurementRecord&,
            bool /*from_cache*/) { ++records; },
        [&] {
          return records.load() >= 1 ? std::string("aborted")
                                     : std::string();
        });
  } catch (const orchestrator::CampaignStopped& e) {
    threw = true;
    EXPECT_EQ(e.code(), "aborted");
  }
  EXPECT_TRUE(threw);
  EXPECT_GE(records.load(), 1u);
  EXPECT_LT(records.load(), queue.total());
}

// ---------------------------------------------------- outbox backpressure --

/// An ostream sink whose writes block until the gate opens — the "client
/// that stopped reading" of the backpressure tests. Bytes are discarded.
class GateBuf : public std::streambuf {
 public:
  void open_gate() {
    {
      std::lock_guard lock(mutex_);
      open_ = true;
    }
    opened_.notify_all();
  }

 protected:
  int_type overflow(int_type ch) override {
    wait_open();
    return traits_type::not_eof(ch);
  }
  std::streamsize xsputn(const char*, std::streamsize n) override {
    wait_open();
    return n;
  }

 private:
  void wait_open() {
    std::unique_lock lock(mutex_);
    opened_.wait(lock, [this] { return open_; });
  }

  std::mutex mutex_;
  std::condition_variable opened_;
  bool open_ = false;
};

TEST(Outbox, DataLinesBlockAtCapacityControlLinesBypass) {
  GateBuf gate;
  std::ostream sink(&gate);
  SessionOutbox outbox(sink, /*capacity=*/2);
  std::atomic<int> accepted{0};
  std::thread producer([&] {
    for (int i = 0; i < 6; ++i) {
      outbox.push_data("record r" + std::to_string(i));
      accepted.store(i + 1);
    }
  });
  // Against a shut gate, at most capacity lines plus the writer's single
  // in-flight line can be accepted; the producer must stall well short of 6.
  EXPECT_FALSE(wait_until([&] { return accepted.load() >= 6; }, 300));
  EXPECT_LE(accepted.load(), 3);
  outbox.push_control("event while full");  // returns despite the full queue
  gate.open_gate();
  ASSERT_TRUE(wait_until([&] { return accepted.load() == 6; }));
  producer.join();
  outbox.close();
  const auto stats = outbox.stats();
  EXPECT_EQ(stats.capacity, 2u);
  EXPECT_GE(stats.high_water, 2u);
  EXPECT_GE(stats.blocked, 1u);
  EXPECT_EQ(stats.dropped, 0u);
}

TEST(Outbox, CancelDiscardsQueuedDataAndUnblocksProducers) {
  GateBuf gate;
  std::ostream sink(&gate);
  SessionOutbox outbox(sink, /*capacity=*/2);
  std::atomic<bool> producer_done{false};
  std::thread producer([&] {
    for (int i = 0; i < 6; ++i) {
      outbox.push_data("record r" + std::to_string(i));
    }
    producer_done.store(true);
  });
  EXPECT_FALSE(wait_until([&] { return producer_done.load(); }, 300));
  // The gate is still shut: cancellation ALONE must unblock the producer —
  // this is what cuts an aborted campaign loose from a stalled client.
  outbox.cancel();
  ASSERT_TRUE(wait_until([&] { return producer_done.load(); }));
  producer.join();
  EXPECT_TRUE(outbox.cancelled());
  outbox.push_data("record post-cancel");  // dropped, not blocked
  outbox.push_control("error aborted");    // control still flows
  gate.open_gate();
  outbox.close();
  EXPECT_GE(outbox.stats().dropped, 6u);
}

TEST(Outbox, StreamAdapterSplitsLinesAndPreservesOrder) {
  std::ostringstream sink;
  SessionOutbox outbox(sink, 4);
  {
    OutboxStream out(outbox);
    out << "record a 1\nprogress 1 of 2\n";
    out << "shard 0 start worker w\n";
  }
  outbox.close();
  EXPECT_EQ(sink.str(),
            "record a 1\nprogress 1 of 2\nshard 0 start worker w\n");
}

TEST(Outbox, StreamAdapterDropsOnlyDataAfterCancel) {
  std::ostringstream sink;
  SessionOutbox outbox(sink, 4);
  OutboxStream out(outbox);
  outbox.cancel();
  out << "record dropped 1\n";
  out << "progress dropped 2 of 2\n";
  out << "error aborted campaign 1\n";
  outbox.close();
  EXPECT_EQ(sink.str(), "error aborted campaign 1\n");
  EXPECT_EQ(outbox.stats().dropped, 2u);
}

// -------------------------------------------------- fault-stream scripts --

TEST(FaultStreamTest, TruncatesCorruptsAndStallsAtTheScriptedOffset) {
  {
    test::FaultStream in("hello world", test::Fault::kTruncate, 5);
    std::string got((std::istreambuf_iterator<char>(in)),
                    std::istreambuf_iterator<char>());
    EXPECT_EQ(got, "hello");
  }
  {
    test::FaultStream in("hello world", test::Fault::kCorrupt, 0);
    std::string got((std::istreambuf_iterator<char>(in)),
                    std::istreambuf_iterator<char>());
    ASSERT_EQ(got.size(), 11u);
    EXPECT_EQ(got[0], static_cast<char>('h' ^ 0xFF));
    EXPECT_EQ(got.substr(1), "ello world");
  }
  {
    test::FaultStream in("hello world", test::Fault::kStall, 5);
    std::string head(5, '\0');
    in.read(head.data(), 5);
    EXPECT_EQ(head, "hello");
    std::atomic<bool> resumed{false};
    std::thread reader([&] {
      char c = 0;
      in.get(c);
      EXPECT_EQ(c, ' ');
      resumed.store(true);
    });
    EXPECT_FALSE(wait_until([&] { return resumed.load(); }, 100));
    in.release();
    ASSERT_TRUE(wait_until([&] { return resumed.load(); }));
    reader.join();
  }
}

// The worker side of the wire under scripted faults: a clean EOF is a
// normal daemon departure (exit 0); a frame cut or corrupted mid-payload
// is a protocol violation (exit 1) — never a hang or a crash.
TEST(FaultStreamTest, WorkerSessionDistinguishesCleanEofFromFrameFaults) {
  CampaignRequest request;
  request.name = "t";
  request.sme_sizes = {32};
  const std::string task_frame =
      encode_frame({kFrameTask, encode_task(request, 0, {0})});
  const std::string hello_ack = "ok worker w\n";
  {
    test::FaultStream in(hello_ack);  // ack, then clean end-of-stream
    std::ostringstream out;
    EXPECT_EQ(run_worker_session(in, out, "w"), 0);
  }
  {
    const std::string bytes = hello_ack + task_frame;
    test::FaultStream in(bytes, test::Fault::kTruncate, bytes.size() - 7);
    std::ostringstream out;
    EXPECT_EQ(run_worker_session(in, out, "w"), 1);
  }
  {
    const std::string bytes = hello_ack + task_frame;
    test::FaultStream in(bytes, test::Fault::kCorrupt, bytes.size() - 10);
    std::ostringstream out;
    EXPECT_EQ(run_worker_session(in, out, "w"), 1);
  }
}

// --------------------------------------------------- query crash recovery --

orchestrator::CacheKey recovery_key(std::size_t i) {
  orchestrator::CacheKey key;
  key.kind = orchestrator::JobKind::kGemmMeasure;
  key.chip = soc::kAllChipModels[i % 4];
  key.impl = soc::GemmImpl::kCpuSingle;
  key.n = 32 + 16 * (i % 5);
  key.payload_fingerprint = 7000 + i;
  key.options_fingerprint = 11;
  return key;
}

orchestrator::MeasurementRecord recovery_record(std::size_t i) {
  harness::GemmMeasurement m;
  const auto key = recovery_key(i);
  m.n = key.n;
  m.chip = key.chip;
  m.impl = key.impl;
  m.best_gflops = 64.25 + static_cast<double>(i);
  m.time_ns.add(2.5e6 + static_cast<double>(i));
  return m;
}

/// Every `query-record` payload of one full query session.
std::vector<std::string> query_records(CampaignService& service) {
  std::vector<std::string> records;
  for (const auto& line : serve_lines(service, "query limit 4096\n")) {
    if (line.rfind("query-record ", 0) == 0) {
      records.push_back(line.substr(13));
    }
  }
  return records;
}

TEST(Chaos, SigkilledWriterColdRebuildsAndServesIdenticalQueries) {
  const auto dir = temp_dir("sigkill_query");
  const std::string killed = (dir / "killed.store").string();
  const std::string pristine = (dir / "pristine.store").string();

  // The undisturbed twin: the same 14 points, written and closed cleanly.
  {
    orchestrator::ResultCache cache;
    cache.persist_to(pristine);
    for (std::size_t i = 0; i < 14; ++i) {
      cache.insert(recovery_key(i), recovery_record(i));
    }
  }

  // The victim: a child process writes the same points, then dies by
  // SIGKILL with a torn, newline-less entry fragment at the store's tail —
  // the exact on-disk state an append cut mid-write leaves behind.
  const pid_t child = fork();
  ASSERT_GE(child, 0);
  if (child == 0) {
    orchestrator::ResultCache cache;
    cache.persist_to(killed);
    for (std::size_t i = 0; i < 14; ++i) {
      cache.insert(recovery_key(i), recovery_record(i));
    }
    std::ofstream torn(killed, std::ios::app);
    torn << "entry 0 1 0 40 1b63 b torn-mid-write";  // no newline, no digest
    torn.flush();
    raise(SIGKILL);
    _exit(42);  // unreachable
  }
  int status = 0;
  ASSERT_EQ(waitpid(child, &status, 0), child);
  ASSERT_TRUE(WIFSIGNALED(status));
  ASSERT_EQ(WTERMSIG(status), SIGKILL);

  // Restart "the daemon" over the killed store: the cold-start index scan
  // must skip the torn tail and serve queries bit-identical to the twin.
  CampaignService::Config undisturbed_config;
  undisturbed_config.store_path = pristine;
  CampaignService undisturbed(undisturbed_config);
  CampaignService::Config recovered_config;
  recovered_config.store_path = killed;
  CampaignService recovered(recovered_config);

  const auto expected = query_records(undisturbed);
  ASSERT_EQ(expected.size(), 14u);
  EXPECT_EQ(query_records(recovered), expected);

  // The recovered daemon keeps appending correctly: new campaign records
  // land after the (terminated) torn tail and stay queryable.
  const auto lines = serve_lines(recovered,
                                 "begin aftermath\n"
                                 "chips m1\n"
                                 "impls cpu-single\n"
                                 "sizes 24\n"
                                 "repetitions 1\n"
                                 "run\n");
  ASSERT_FALSE(lines.empty());
  EXPECT_EQ(lines.back().rfind("done campaign ", 0), 0u) << lines.back();
  const auto grown = query_records(recovered);
  EXPECT_GT(grown.size(), expected.size());
  for (const auto& record : grown) {
    EXPECT_TRUE(orchestrator::parse_store_entry(record).has_value())
        << record;
  }
  std::filesystem::remove_all(dir);
}

TEST(Chaos, FollowResumedFromAnyCursorDeliversEveryRecordExactlyOnce) {
  const auto dir = temp_dir("follow_resume");
  CampaignService::Config config;
  config.store_path = (dir / "follow.store").string();
  CampaignService service(config);

  const auto campaign = serve_lines(service,
                                    "begin resilient\n"
                                    "chips m1,m2\n"
                                    "impls cpu-single\n"
                                    "sizes 32,48\n"
                                    "repetitions 1\n"
                                    "run\n");
  ASSERT_FALSE(campaign.empty());
  ASSERT_EQ(campaign.back().rfind("done campaign ", 0), 0u);

  // The full stream, as one uninterrupted follow: (resume-token, entry).
  std::vector<std::pair<std::string, std::string>> full;
  for (const auto& line : serve_lines(service, "follow resilient\n")) {
    if (line.rfind("follow-record ", 0) == 0) {
      std::istringstream words(line);
      std::string tag;
      std::string token;
      words >> tag >> token;
      std::string entry;
      std::getline(words, entry);
      full.emplace_back(token, entry.substr(1));
    }
  }
  ASSERT_GE(full.size(), 2u);

  // Drop the connection after every possible prefix; resume from the last
  // token the client read. Prefix + resumed tail must equal the full
  // stream bit-identically — every record exactly once, none skipped.
  for (std::size_t k = 0; k <= full.size(); ++k) {
    const std::string command =
        k == 0 ? "follow resilient\n"
               : "follow resilient from " + full[k - 1].first + "\n";
    std::vector<std::string> resumed;
    std::string terminal;
    for (const auto& line : serve_lines(service, command)) {
      if (line.rfind("follow-record ", 0) == 0) {
        std::istringstream words(line);
        std::string tag;
        std::string token;
        words >> tag >> token;
        std::string entry;
        std::getline(words, entry);
        resumed.push_back(entry.substr(1));
      } else if (line.rfind("follow ", 0) == 0) {
        terminal = line;
      }
    }
    ASSERT_EQ(resumed.size(), full.size() - k) << "prefix " << k;
    for (std::size_t i = 0; i < resumed.size(); ++i) {
      EXPECT_EQ(resumed[i], full[k + i].second)
          << "prefix " << k << " record " << i;
    }
    EXPECT_NE(terminal.find(" state complete"), std::string::npos)
        << terminal;
  }
  std::filesystem::remove_all(dir);
}

}  // namespace
}  // namespace ao::service
