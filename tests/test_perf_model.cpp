#include <gtest/gtest.h>

#include "soc/perf_model.hpp"
#include "util/units.hpp"

namespace ao::soc {
namespace {

// ------------------------------------------------------ curve mechanics ----

TEST(PerfModelCurves, RiseFactorApproachesOne) {
  GemmCalibration c;
  c.n_half = 512;
  c.rise_exponent = 1.7;
  EXPECT_LT(PerfModel::rise_factor(c, 64), 0.05);
  EXPECT_NEAR(PerfModel::rise_factor(c, 512), 0.5, 1e-12);
  EXPECT_GT(PerfModel::rise_factor(c, 16384), 0.99);
}

TEST(PerfModelCurves, RiseMonotonic) {
  GemmCalibration c;
  c.n_half = 256;
  c.rise_exponent = 2.0;
  double prev = 0.0;
  for (std::size_t n = 32; n <= 16384; n *= 2) {
    const double r = PerfModel::rise_factor(c, n);
    EXPECT_GT(r, prev);
    prev = r;
  }
}

TEST(PerfModelCurves, DecayDisabledWhenZero) {
  GemmCalibration c;
  c.n_decay = 0.0;
  EXPECT_DOUBLE_EQ(PerfModel::decay_factor(c, 16384), 1.0);
}

TEST(PerfModelCurves, DecayHalvesAtKnee) {
  GemmCalibration c;
  c.n_decay = 1200;
  c.decay_exponent = 1.2;
  EXPECT_NEAR(PerfModel::decay_factor(c, 1200), 0.5, 1e-12);
  EXPECT_LT(PerfModel::decay_factor(c, 4096), 0.25);
}

// --------------------------------------------------- GEMM reproduction -----

class PerfModelGemm : public ::testing::TestWithParam<ChipModel> {};

TEST_P(PerfModelGemm, LargeSizesReachPublishedPeaks) {
  Soc soc(GetParam());
  PerfModel perf(soc);
  for (const auto impl :
       {GemmImpl::kCpuAccelerate, GemmImpl::kGpuNaive, GemmImpl::kGpuCutlass,
        GemmImpl::kGpuMps}) {
    const double peak = gemm_calibration(GetParam(), impl).peak_gflops;
    const double at_16k = perf.gemm_gflops(impl, 16384);
    EXPECT_GT(at_16k, peak * 0.95) << to_string(impl);
    EXPECT_LE(at_16k, peak * 1.001) << to_string(impl);
  }
}

TEST_P(PerfModelGemm, TimeGrowsWithSize) {
  Soc soc(GetParam());
  PerfModel perf(soc);
  for (const auto impl : kAllGemmImpls) {
    double prev = 0.0;
    for (std::size_t n = 32; n <= 16384; n *= 2) {
      const double t = perf.gemm_time_ns(impl, n);
      EXPECT_GT(t, prev) << to_string(impl) << " n=" << n;
      prev = t;
    }
  }
}

TEST_P(PerfModelGemm, GpuOverheadDominatesSmallSizes) {
  // "GPU-based methods ... are less optimal at smaller sizes for their large
  // overhead" — at n = 32 the CPU naive loop must beat every GPU path.
  Soc soc(GetParam());
  PerfModel perf(soc);
  const double cpu_single = perf.gemm_time_ns(GemmImpl::kCpuSingle, 32);
  for (const auto gpu :
       {GemmImpl::kGpuNaive, GemmImpl::kGpuCutlass, GemmImpl::kGpuMps}) {
    EXPECT_LT(cpu_single, perf.gemm_time_ns(gpu, 32)) << to_string(gpu);
  }
}

TEST_P(PerfModelGemm, MpsDominatesAtLargeSizes) {
  Soc soc(GetParam());
  PerfModel perf(soc);
  const double mps = perf.gemm_gflops(GemmImpl::kGpuMps, 16384);
  for (const auto other :
       {GemmImpl::kCpuSingle, GemmImpl::kCpuOmp, GemmImpl::kCpuAccelerate,
        GemmImpl::kGpuNaive, GemmImpl::kGpuCutlass}) {
    EXPECT_GT(mps, perf.gemm_gflops(other, 16384)) << to_string(other);
  }
}

TEST_P(PerfModelGemm, NaiveCpuCollapsesBeyondCache) {
  // Figure 2: the baseline's GFLOPS fall once the matrices leave the L2.
  Soc soc(GetParam());
  PerfModel perf(soc);
  const double small = perf.gemm_gflops(GemmImpl::kCpuSingle, 256);
  const double large = perf.gemm_gflops(GemmImpl::kCpuSingle, 4096);
  EXPECT_LT(large, small * 0.5);
}

TEST_P(PerfModelGemm, PowerRisesWithSaturation) {
  Soc soc(GetParam());
  PerfModel perf(soc);
  for (const auto impl : kAllGemmImpls) {
    const double p_small = perf.gemm_power_watts(impl, 64);
    const double p_large = perf.gemm_power_watts(impl, 8192);
    EXPECT_GT(p_large, p_small) << to_string(impl);
    EXPECT_LE(p_large,
              gemm_calibration(GetParam(), impl).power_watts + 1e-9);
  }
}

TEST_P(PerfModelGemm, UtilizationInUnitRange) {
  Soc soc(GetParam());
  PerfModel perf(soc);
  for (const auto impl : kAllGemmImpls) {
    for (std::size_t n = 32; n <= 16384; n *= 4) {
      const double u = perf.gemm_utilization(impl, n);
      EXPECT_GE(u, 0.0);
      EXPECT_LE(u, 1.0);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(AllChips, PerfModelGemm,
                         ::testing::ValuesIn(kAllChipModels),
                         [](const auto& info) { return to_string(info.param); });

// ------------------------------------------------- efficiency anchors ------

TEST(PerfModelEfficiency, MpsReaches200GflopsPerWattEverywhere) {
  // "All four chips reached the efficiency of 200 GFLOPS per Watt with
  //  GPU-MPS."
  for (const auto chip : kAllChipModels) {
    Soc soc(chip);
    PerfModel perf(soc);
    const double gflops = perf.gemm_gflops(GemmImpl::kGpuMps, 16384);
    const double watts = perf.gemm_power_watts(GemmImpl::kGpuMps, 16384);
    EXPECT_GE(gflops / watts, 200.0) << to_string(chip);
  }
}

TEST(PerfModelEfficiency, CpuPathsBelowOneGflopPerWatt) {
  // "Both CPU-single and OMP achieve less than 1 GFLOPS per Watt."
  for (const auto chip : kAllChipModels) {
    Soc soc(chip);
    PerfModel perf(soc);
    for (const auto impl : {GemmImpl::kCpuSingle, GemmImpl::kCpuOmp}) {
      const double gflops = perf.gemm_gflops(impl, 4096);
      const double watts = perf.gemm_power_watts(impl, 4096);
      EXPECT_LT(gflops / watts, 1.0)
          << to_string(chip) << "/" << to_string(impl);
    }
  }
}

TEST(PerfModelEfficiency, M4CutlassDrawsTheMostPower) {
  // "M4 exhibited the highest power consumption using the Cutlass-style
  //  shader" (Figure 3).
  Soc m4(ChipModel::kM4);
  PerfModel perf(m4);
  const double cutlass_m4 =
      perf.gemm_power_watts(GemmImpl::kGpuCutlass, 16384);
  for (const auto chip : kAllChipModels) {
    Soc soc(chip);
    PerfModel p(soc);
    for (const auto impl : kAllGemmImpls) {
      EXPECT_LE(p.gemm_power_watts(impl, 16384), cutlass_m4 + 1e-9)
          << to_string(chip) << "/" << to_string(impl);
    }
  }
}

// ------------------------------------------------------------- STREAM ------

TEST(PerfModelStream, FullThreadSweepHitsAnchors) {
  for (const auto chip : kAllChipModels) {
    Soc soc(chip);
    PerfModel perf(soc);
    const auto& s = calibration(chip).stream;
    const int cores = soc.spec().total_cpu_cores();
    for (std::size_t k = 0; k < 4; ++k) {
      const double bw = perf.stream_bandwidth_gbs(
          MemoryAgent::kCpu, kAllStreamKernels[k], cores);
      EXPECT_NEAR(bw, s.cpu_gbs[k], s.cpu_gbs[k] * 1e-9) << to_string(chip);
    }
  }
}

TEST(PerfModelStream, ThreadScalingMonotonic) {
  Soc soc(ChipModel::kM1);
  PerfModel perf(soc);
  double prev = 0.0;
  for (int t = 1; t <= soc.spec().total_cpu_cores(); ++t) {
    const double bw =
        perf.stream_bandwidth_gbs(MemoryAgent::kCpu, StreamKernel::kTriad, t);
    EXPECT_GT(bw, prev);
    prev = bw;
  }
}

TEST(PerfModelStream, SingleThreadCannotSaturate) {
  Soc soc(ChipModel::kM4);
  PerfModel perf(soc);
  const double one =
      perf.stream_bandwidth_gbs(MemoryAgent::kCpu, StreamKernel::kTriad, 1);
  const double all = perf.stream_bandwidth_gbs(
      MemoryAgent::kCpu, StreamKernel::kTriad, soc.spec().total_cpu_cores());
  EXPECT_LT(one, all * 0.6);
}

TEST(PerfModelStream, GpuIncludesLaunchOverhead) {
  Soc soc(ChipModel::kM2);
  PerfModel perf(soc);
  const double tiny =
      perf.stream_time_ns(MemoryAgent::kGpu, StreamKernel::kCopy, 1024, 1);
  EXPECT_GE(tiny, calibration(ChipModel::kM2).stream.gpu_launch_overhead_ns);
}

TEST(PerfModelStream, BandwidthNeverExceedsTheoretical) {
  for (const auto chip : kAllChipModels) {
    Soc soc(chip);
    PerfModel perf(soc);
    const double theo = soc.spec().memory_bandwidth_gbs;
    for (const auto kernel : kAllStreamKernels) {
      EXPECT_LE(perf.stream_bandwidth_gbs(MemoryAgent::kGpu, kernel, 1), theo);
      EXPECT_LE(perf.stream_bandwidth_gbs(MemoryAgent::kCpu, kernel,
                                          soc.spec().total_cpu_cores()),
                theo);
    }
  }
}

// ------------------------------------------------------ generic kernels ----

TEST(PerfModelGeneric, RooflineSelectsBindingResource) {
  Soc soc(ChipModel::kM1);
  PerfModel perf(soc);
  const double overhead = calibration(ChipModel::kM1).stream.gpu_launch_overhead_ns;
  // Pure-compute kernel: time tracks flops.
  const double t_compute = perf.gpu_kernel_time_ns(1e12, 1e3);
  // Pure-memory kernel: time tracks bytes.
  const double t_memory = perf.gpu_kernel_time_ns(1e3, 100e9);
  EXPECT_GT(t_compute, overhead);
  EXPECT_GT(t_memory, overhead);
  // 1 TFLOP at ~60% of 2.61 TFLOPS peak ~ 0.64 ms; 100 GB at 60 GB/s ~ 1.7 s.
  EXPECT_LT(t_compute, 1e9);
  EXPECT_GT(t_memory, 1e9);
}

TEST(PerfModelGeneric, ThermalThrottleSlowsKernels) {
  Soc soc(ChipModel::kM1);  // passive MacBook Air
  PerfModel perf(soc);
  const double cold = perf.gemm_time_ns(GemmImpl::kGpuMps, 4096);
  // Heat-soak the package.
  soc.thermal().integrate(20.0, 3600.0);
  ASSERT_LT(soc.thermal().throttle_factor(), 1.0);
  const double hot = perf.gemm_time_ns(GemmImpl::kGpuMps, 4096);
  EXPECT_GT(hot, cold);
}

}  // namespace
}  // namespace ao::soc
