#include <gtest/gtest.h>

#include "power/power_model.hpp"
#include "power/powermetrics.hpp"
#include "util/error.hpp"

namespace ao::power {
namespace {

// ---------------------------------------------------------- PowerModel -----

TEST(PowerModel, IdleFloorMatchesCalibration) {
  soc::Soc soc(soc::ChipModel::kM1);
  PowerModel model(soc);
  const PowerSample idle = model.idle_floor(1.0);
  EXPECT_DOUBLE_EQ(idle.cpu_mw, soc.calib().idle.cpu_watts * 1e3);
  EXPECT_DOUBLE_EQ(idle.gpu_mw, soc.calib().idle.gpu_watts * 1e3);
  EXPECT_DOUBLE_EQ(idle.combined_mw, idle.cpu_mw + idle.gpu_mw + idle.ane_mw);
}

TEST(PowerModel, AverageAttributesUnitsCorrectly) {
  soc::Soc soc(soc::ChipModel::kM2);
  PowerModel model(soc);
  // 1 simulated second of GPU work at 5.6 W.
  soc.execute(soc::ComputeUnit::kGpu, 1e9, 5.6, 1.0);
  const PowerSample s = model.average_over(0, soc.clock().now());
  EXPECT_NEAR(s.gpu_mw, 5600.0 + soc.calib().idle.gpu_watts * 1e3, 1.0);
  EXPECT_NEAR(s.cpu_mw, soc.calib().idle.cpu_watts * 1e3, 1.0);
}

TEST(PowerModel, AmxCountsAsCpuPower) {
  // powermetrics reports AMX draw inside "CPU Power" — the paper's
  // CPU-Accelerate rows rely on this attribution.
  soc::Soc soc(soc::ChipModel::kM3);
  PowerModel model(soc);
  soc.execute(soc::ComputeUnit::kAmx, 1e9, 5.1, 1.0);
  const PowerSample s = model.average_over(0, soc.clock().now());
  EXPECT_GT(s.cpu_mw, 5000.0);
  EXPECT_LT(s.gpu_mw, 100.0);
}

TEST(PowerModel, IdleGapDilutesAverage) {
  soc::Soc soc(soc::ChipModel::kM1);
  PowerModel model(soc);
  soc.execute(soc::ComputeUnit::kGpu, 1e9, 10.0, 1.0);
  soc.idle(1e9);  // equal idle stretch halves the average
  const PowerSample s = model.average_over(0, soc.clock().now());
  EXPECT_NEAR(s.gpu_mw, 5000.0 + soc.calib().idle.gpu_watts * 1e3, 1.0);
}

TEST(PowerModel, EnergyIntegrates) {
  soc::Soc soc(soc::ChipModel::kM4);
  PowerModel model(soc);
  soc.execute(soc::ComputeUnit::kGpu, 2e9, 8.8, 1.0);
  const double joules = model.energy_joules(0, soc.clock().now());
  const double idle_watts = soc.calib().idle.cpu_watts +
                            soc.calib().idle.gpu_watts +
                            soc.calib().idle.dram_watts;
  EXPECT_NEAR(joules, 2.0 * 8.8 + 2.0 * idle_watts, 0.01);
}

TEST(PowerModel, EmptyWindowThrows) {
  soc::Soc soc(soc::ChipModel::kM1);
  PowerModel model(soc);
  EXPECT_THROW(model.average_over(100, 100), util::InvalidArgument);
}

// ----------------------------------------------------------- SamplerSet ----

TEST(SamplerSet, ParsesToolArgument) {
  const SamplerSet s = SamplerSet::parse("cpu_power,gpu_power");
  EXPECT_TRUE(s.cpu_power);
  EXPECT_TRUE(s.gpu_power);
  EXPECT_FALSE(s.ane_power);
  EXPECT_EQ(s.to_string(), "cpu_power,gpu_power");
  EXPECT_THROW(SamplerSet::parse("bogus"), util::InvalidArgument);
}

// --------------------------------------------------------- PowerMetrics ----

TEST(PowerMetrics, PaperProtocol) {
  // Section 3.3: start, warm up two seconds, SIGINFO (reset), run, SIGINFO
  // (capture), stop.
  soc::Soc soc(soc::ChipModel::kM2);
  PowerMetrics pm(soc, SamplerSet{true, true, false});
  pm.start();
  soc.idle(2e9);
  const PowerSample warmup = pm.siginfo();
  EXPECT_NEAR(warmup.window_seconds, 2.0, 1e-9);
  // Warm-up window is idle: combined power is just the floor.
  EXPECT_LT(warmup.combined_mw, 200.0);

  soc.execute(soc::ComputeUnit::kGpu, 3e9, 5.6, 1.0);
  const PowerSample run = pm.siginfo();
  EXPECT_NEAR(run.window_seconds, 3.0, 1e-9);
  EXPECT_GT(run.gpu_mw, 5000.0);
  pm.stop();
  EXPECT_FALSE(pm.running());
  EXPECT_EQ(pm.samples().size(), 2u);
}

TEST(PowerMetrics, LifecycleErrors) {
  soc::Soc soc(soc::ChipModel::kM1);
  PowerMetrics pm(soc);
  EXPECT_THROW(pm.siginfo(), util::StateError);  // before start
  EXPECT_THROW(pm.stop(), util::InvalidArgument);
  pm.start();
  EXPECT_THROW(pm.start(), util::InvalidArgument);  // double start
  EXPECT_THROW(pm.siginfo(), util::InvalidArgument);  // empty window
  soc.idle(1e6);
  pm.siginfo();
  pm.stop();
  EXPECT_THROW(pm.siginfo(), util::StateError);  // after stop
}

TEST(PowerMetrics, OutputTextFormat) {
  soc::Soc soc(soc::ChipModel::kM4);
  PowerMetrics pm(soc, SamplerSet{true, true, true});
  pm.start();
  soc.execute(soc::ComputeUnit::kGpu, 1e9, 8.8, 1.0);
  pm.siginfo();
  pm.stop();
  const std::string& text = pm.output_text();
  EXPECT_NE(text.find("Machine model: Mac mini (M4)"), std::string::npos);
  EXPECT_NE(text.find("CPU Power:"), std::string::npos);
  EXPECT_NE(text.find("GPU Power:"), std::string::npos);
  EXPECT_NE(text.find("ANE Power:"), std::string::npos);
  EXPECT_NE(text.find("Combined Power (CPU + GPU + ANE):"), std::string::npos);
  EXPECT_NE(text.find("Monitor stopped."), std::string::npos);
}

TEST(PowerMetrics, ParserRoundTrip) {
  // The paper's pipeline: write text file, parse it back into numbers.
  soc::Soc soc(soc::ChipModel::kM3);
  PowerMetrics pm(soc, SamplerSet{true, true, true});
  pm.start();
  soc.idle(2e9);
  pm.siginfo();
  soc.execute(soc::ComputeUnit::kAmx, 5e8, 5.1, 1.0);
  pm.siginfo();
  pm.stop();

  const auto parsed = parse_powermetrics_output(pm.output_text());
  ASSERT_EQ(parsed.size(), 2u);
  EXPECT_NEAR(parsed[0].window_seconds, 2.0, 1e-3);
  EXPECT_NEAR(parsed[1].window_seconds, 0.5, 1e-3);
  // mW values round to integers in the text; compare at that granularity.
  EXPECT_NEAR(parsed[1].cpu_mw, pm.samples()[1].cpu_mw, 1.0);
  EXPECT_NEAR(parsed[1].combined_mw, pm.samples()[1].combined_mw, 1.0);
}

TEST(PowerMetrics, ParserIgnoresDisabledSamplers) {
  soc::Soc soc(soc::ChipModel::kM1);
  PowerMetrics pm(soc, SamplerSet{false, true, false});  // gpu only
  pm.start();
  soc.idle(1e9);
  pm.siginfo();
  pm.stop();
  const auto parsed = parse_powermetrics_output(pm.output_text());
  ASSERT_EQ(parsed.size(), 1u);
  EXPECT_EQ(parsed[0].cpu_mw, 0.0);  // absent from the text
  EXPECT_GT(parsed[0].combined_mw, 0.0);
}

TEST(PowerMetrics, ParserHandlesGarbage) {
  EXPECT_TRUE(parse_powermetrics_output("").empty());
  EXPECT_TRUE(parse_powermetrics_output("random text\nno samples here\n").empty());
}

}  // namespace
}  // namespace ao::power
